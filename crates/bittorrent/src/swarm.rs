//! The round-based swarm simulator.
//!
//! One round models one rechoke period (10 s). Each round every peer:
//!
//! 1. **rechokes**: ranks its overlay neighbours by the download rate
//!    received from them during the previous round and unchokes the top
//!    `tft_slots` interested ones (Tit-for-Tat); every `optimistic_period`
//!    rounds it also rotates one *optimistic* unchoke to a random interested
//!    choked neighbour — the paper's "generous connection" that powers the
//!    random-initiative discovery of better partners (§6);
//! 2. **transfers**: its upload capacity is split equally among unchoked
//!    interested neighbours; received credit converts into pieces selected
//!    **rarest-first** among the pieces the sender holds.
//!
//! Seeds (and completed leechers, §6 post-flash-crowd) unchoke interested
//! neighbours uniformly at random, rotating every round.
//!
//! # Engine layout
//!
//! The engine is data-oriented, mirroring the `strat-core` treatment of
//! the matching hot paths: the overlay is a CSR-style arena with a
//! precomputed reverse-edge index (`rev[e]` locates the slot of edge
//! `q → p` given `e = p → q`, replacing the reference engine's linear
//! `position()` scan on every delivery), per-peer scalars live in flat
//! parallel arrays, per-edge rate/credit state lives in row-aligned
//! arrays, and unchoke sets live in a fixed-stride arena. A persistent
//! [`Scratch`] arena holds the per-peer candidate/rank/pool buffers, so a
//! steady-state [`Swarm::round`] performs **zero heap allocation**.
//!
//! # Open membership
//!
//! Overlay rows are allocated extents (`row_off`) with a live degree
//! (`deg[p] ≤` row capacity), so the arena supports **membership
//! mutation** between rounds without rebuilding: [`Swarm::depart`]
//! removes a peer (unlinking every edge with `O(1)` swap-removes that
//! patch the reverse-edge index in place), [`Swarm::arrive`] admits one
//! into a free-listed slot (or grows the arena), and
//! [`Swarm::connect_peers`] splices a tracker-handed edge into both rows.
//! Piece availability is maintained incrementally through all of it by
//! the ordered availability index (`avail` module), and
//! [`Swarm::population`] / [`Swarm::completed`] read the
//! incrementally-tracked population split and cumulative completions.
//! The session layer ([`crate::session`]) drives these primitives with
//! arrival/departure processes; a closed swarm (no mutation) behaves
//! exactly as the historical fixed-`n` engine — the differential suites
//! against [`crate::reference::RefSwarm`] pin that.
//!
//! Two round semantics are offered:
//!
//! * [`Swarm::round`] / [`Swarm::run_rounds`] — the serial semantics,
//!   bit-identical to the retained reference engine
//!   ([`crate::reference::RefSwarm::round`]): one shared ChaCha stream,
//!   sender-major delivery with live piece/availability state;
//! * [`Swarm::run_rounds_parallel`] — the indexed-stream semantics
//!   ([`crate::reference::RefSwarm::round_indexed`]): per-peer randomness
//!   derived from `(seed, round, peer)`, phase-structured rounds
//!   (rechoke + sender flows, then recipient-major delivery against the
//!   start-of-round snapshot), bit-reproducible for **any** thread count
//!   under the workspace determinism contract (`strat-par`).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use strat_graph::{generators, NodeId};
use strat_par::split_lengths;

use crate::avail::{AvailIndex, AvailShard};
use crate::observer::{NullObserver, RunObserver};
use crate::{PeerBehavior, PieceSet, SwarmConfig};

/// Index of a peer inside a [`Swarm`] (an arena slot; the session layer
/// wraps it with a generation tag).
pub type PeerId = usize;

/// Sentinel for "no optimistic unchoke" in the flat optimistic array.
pub(crate) const NO_OPT: u32 = u32::MAX;

/// One independent ChaCha stream per `(round, peer)` pair: the randomness
/// source of the indexed-round semantics. The stream id packs the round in
/// the high 32 bits and the peer index in the low 32 (both comfortably
/// below 2³² — a 10 s round cadence would take 1 300 years to wrap), and
/// the key is derived from the swarm seed XOR a domain separator so the
/// streams never collide with the shared serial stream.
pub(crate) fn peer_round_rng(seed: u64, round: u64, peer: usize) -> ChaCha8Rng {
    debug_assert!(peer < u32::MAX as usize, "peer index exceeds stream space");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7061_7261_6c6c_656c); // "parallel"
    rng.set_stream((round << 32) | peer as u64);
    rng
}

/// The present-population split of a swarm: peers still downloading vs
/// peers holding the complete file (original seeds and promoted
/// leechers). Maintained incrementally — reading it never rescans piece
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    /// Present peers that do not yet hold every piece.
    pub downloading: usize,
    /// Present peers holding the complete file.
    pub seeding: usize,
}

impl Population {
    /// Total present peers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.downloading + self.seeding
    }
}

/// Borrowed view of one peer's state (the accessor surface the old
/// array-of-structs `Peer` offered, now over the flat engine arrays).
///
/// Obtained from [`Swarm::peer`]; copies are cheap (two words).
#[derive(Debug, Clone, Copy)]
pub struct Peer<'a> {
    swarm: &'a Swarm,
    id: PeerId,
}

impl<'a> Peer<'a> {
    /// Upload capacity in kbps.
    #[must_use]
    pub fn upload_kbps(&self) -> f64 {
        self.swarm.upload_kbps[self.id]
    }

    /// The peer's choking behavior.
    #[must_use]
    pub fn behavior(&self) -> PeerBehavior {
        self.swarm.behavior[self.id]
    }

    /// The pieces currently held.
    #[must_use]
    pub fn pieces(&self) -> &'a PieceSet {
        &self.swarm.pieces[self.id]
    }

    /// Whether this peer entered the swarm holding the complete file (an
    /// original seed, or a complete arrival admitted by
    /// [`Swarm::arrive`]).
    #[must_use]
    pub fn is_original_seed(&self) -> bool {
        self.swarm.original_seed[self.id]
    }

    /// Whether the peer currently holds every piece.
    #[must_use]
    pub fn is_seeding(&self) -> bool {
        self.pieces().is_complete()
    }

    /// Round at which a leecher completed the file.
    #[must_use]
    pub fn completed_round(&self) -> Option<u64> {
        self.swarm.completed_round[self.id]
    }

    /// Cumulative kilobits uploaded.
    #[must_use]
    pub fn total_uploaded(&self) -> f64 {
        self.swarm.total_up[self.id]
    }

    /// Cumulative kilobits downloaded.
    #[must_use]
    pub fn total_downloaded(&self) -> f64 {
        self.swarm.total_down[self.id]
    }

    /// Share ratio `downloaded / uploaded`; `None` when nothing was
    /// uploaded yet.
    #[must_use]
    pub fn share_ratio(&self) -> Option<f64> {
        (self.total_uploaded() > 0.0).then(|| self.total_downloaded() / self.total_uploaded())
    }

    /// Kilobits uploaded through TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_uploaded(&self) -> f64 {
        self.swarm.tft_up[self.id]
    }

    /// Kilobits received from senders' TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_downloaded(&self) -> f64 {
        self.swarm.tft_down[self.id]
    }

    /// Share ratio of the **TFT economy only** — the quantity the paper's
    /// Figure 11 models (optimistic-slot windfalls excluded); `None` when
    /// nothing was TFT-uploaded yet.
    #[must_use]
    pub fn tft_share_ratio(&self) -> Option<f64> {
        (self.tft_uploaded() > 0.0).then(|| self.tft_downloaded() / self.tft_uploaded())
    }
}

/// Reusable per-round buffers: candidate positions, the rank working copy,
/// the optimistic pool and the transfer target list. Persisted across
/// rounds so the steady-state serial round never allocates.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    cand: Vec<u32>,
    ranked: Vec<u32>,
    pool: Vec<u32>,
    targets: Vec<(u32, bool)>,
    /// Prefetched rarest-first picks, packed `(availability << 32) | piece`.
    pub(crate) picks: Vec<u64>,
}

/// Working state of the parallel round driver — the scatter-write flow
/// mailbox, the start-of-round piece/availability snapshots, per-worker
/// scratches, availability shards and completion counters. Persisted on
/// the [`Swarm`] (like [`Scratch`]) so repeated
/// [`Swarm::run_rounds_parallel`] calls — the sampling pattern of the
/// flash-crowd and session kernels — allocate nothing in the steady
/// state.
///
/// `flow` is one edge-arena-aligned slot per edge, holding an `f64` as
/// bits with the sign carrying the TFT flag (`+share` = TFT flow,
/// `-share` = optimistic, `0` = no flow; shares are strictly positive).
/// Pass 1 *scatters* each sender's share into the reverse-edge slot —
/// every slot has exactly one writing owner, so relaxed stores suffice
/// and the scope join publishes them — and pass 2 then reads each
/// recipient's incoming flows **contiguously** and zeroes the slot,
/// replacing the previous gather of `flow[rev[e]]` (two random reads
/// into multi-megabyte arrays per edge, the dominant cost of the
/// delivery pass at n = 10⁵⁺). Invariant: outside a running parallel
/// round every slot is zero — pass 2 zeroes all it reads, slack slots
/// are never written, and the membership primitives only ever move
/// zeroed slots — so no per-round reset sweep is needed.
#[derive(Debug, Default)]
struct ParBuffers {
    flow: Vec<AtomicU64>,
    pieces_prev: Vec<PieceSet>,
    avail_prev: AvailIndex,
    scratches: Vec<Scratch>,
    shards: Vec<AvailShard>,
    completions: Vec<usize>,
    lost: Vec<u64>,
}

/// Scratch state: cloning a [`Swarm`] starts the copy with fresh buffers
/// (rebuilt on first parallel round; the all-zero `flow` invariant holds
/// vacuously).
impl Clone for ParBuffers {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// A BitTorrent swarm under Tit-for-Tat choking.
///
/// # Examples
///
/// ```
/// use strat_bittorrent::{Swarm, SwarmConfig};
///
/// let config = SwarmConfig::builder().leechers(30).seeds(1).piece_count(32).build();
/// let uploads: Vec<f64> = (0..31).map(|i| 100.0 + 10.0 * i as f64).collect();
/// let mut swarm = Swarm::new(config, &uploads);
/// for _ in 0..20 {
///     swarm.round();
/// }
/// // Transfers happened and conservation holds.
/// let up: f64 = (0..swarm.peer_count()).map(|p| swarm.peer(p).total_uploaded()).sum();
/// let down: f64 = (0..swarm.peer_count()).map(|p| swarm.peer(p).total_downloaded()).sum();
/// assert!(up > 0.0 && (up - down).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Swarm {
    config: SwarmConfig,
    /// Shared stream of the serial round semantics.
    rng: ChaCha8Rng,
    /// Overlay arena: row `p` is allocated `row_off[p]..row_off[p + 1]`
    /// and live in `nbr[row_off[p]..][..deg[p]]`.
    row_off: Vec<usize>,
    deg: Vec<u32>,
    nbr: Vec<u32>,
    /// `rev[e]` = global slot of the reverse edge: for `e` in `p`'s row
    /// pointing at `q`, the slot of `p` inside `q`'s row.
    rev: Vec<u32>,
    // Per-peer state, struct-of-arrays.
    upload_kbps: Vec<f64>,
    behavior: Vec<PeerBehavior>,
    pieces: Vec<PieceSet>,
    completed_round: Vec<Option<u64>>,
    /// Whether the peer entered the swarm holding the complete file.
    original_seed: Vec<bool>,
    /// Membership: departed slots are absent and free-listed for reuse.
    present: Vec<bool>,
    free: Vec<u32>,
    /// Exclusive upper bound on the present slots: every present peer
    /// lives below it, and it is *tight* (`live_bound == 0` or slot
    /// `live_bound - 1` is present). Maintained in amortized `O(1)`
    /// alongside the free list so round loops scan `live_bound` slots
    /// instead of the whole arena when churn has piled up dead slots
    /// past the live population.
    live_bound: usize,
    /// Indexed-stream identity of each slot: the *logical* peer index
    /// its `(seed, round, stream)` ChaCha streams are keyed by. Equal to
    /// the slot index until [`Swarm::compact`] remaps slots; carried
    /// through the reuse stack so a compacted swarm draws exactly the
    /// randomness its uncompacted twin would.
    stream_id: Vec<u32>,
    /// `(stream, row capacity)` of departed slots, pushed by
    /// [`Swarm::depart`] in lockstep with `free` and popped by
    /// [`Swarm::arrive`]. Compaction clears `free` (the dead slots no
    /// longer exist) but keeps this stack: arrivals that would have
    /// reused a dead slot instead grow a fresh slot carrying the dead
    /// slot's stream id and row capacity, keeping stream assignment and
    /// wiring capacity identical to the uncompacted twin.
    reuse_stack: Vec<(u32, u32)>,
    /// Virtual arena length had no compaction ever run: the stream id
    /// handed to arrivals that grow genuinely fresh slots.
    logical_len: u64,
    /// Row capacity handed to arena slots appended by [`Swarm::arrive`].
    grow_row_cap: usize,
    total_up: Vec<f64>,
    total_down: Vec<f64>,
    tft_up: Vec<f64>,
    tft_down: Vec<f64>,
    // Per-edge state, row-aligned.
    received_prev: Vec<f64>,
    received_curr: Vec<f64>,
    /// Set by the parallel engine, which skips the end-of-round zeroing
    /// sweep of `received_curr` (its pass 2 *stores* into every live slot,
    /// so the stale values from two rounds back are never read). The
    /// serial round accumulates with `+=` and so clears the array lazily
    /// when it finds this flag raised.
    received_curr_stale: bool,
    credit: Vec<f64>,
    /// Unchoke arena: row `p` occupies
    /// `tft_store[p * tft_slots..][..tft_len[p]]` (local neighbour
    /// positions).
    tft_store: Vec<u32>,
    tft_len: Vec<u32>,
    /// Local neighbour position of the optimistic unchoke, or [`NO_OPT`].
    optimistic: Vec<u32>,
    /// Global piece availability (present-holder counts), kept
    /// incrementally sorted by `(count, piece)` for rarest-first picks.
    avail: AvailIndex,
    round: u64,
    // Incrementally tracked population split and cumulative completions.
    downloading_now: usize,
    seeding_now: usize,
    completed_total: usize,
    /// Per-round cached completion/behaviour flags (recomputed once per
    /// round instead of per rechoke query).
    uploads_now: Vec<bool>,
    acts_seed_now: Vec<bool>,
    /// Transfer-loss fault injection: per-delivery loss probability and
    /// the fault-stream seed (see [`crate::faults`]). `loss_prob == 0`
    /// disables the hook entirely (no draws, no overhead).
    loss_prob: f64,
    loss_seed: u64,
    /// Cumulative lost deliveries, and lost kbit accumulated per
    /// recipient (peer-owned rows keep the parallel engine's loss totals
    /// bit-identical at any thread count).
    lost_deliveries: u64,
    lost_kbit_by_peer: Vec<f64>,
    /// Loss accumulated by occupants of slots that [`Swarm::compact`]
    /// dropped, so [`Swarm::lost_kbit`] keeps its running total across
    /// compactions.
    lost_kbit_departed: f64,
    scratch: Scratch,
    par: ParBuffers,
}

impl Swarm {
    /// Builds a swarm: `leechers + seeds` peers, random overlay of expected
    /// degree `mean_neighbors`, post-flash-crowd piece initialization.
    ///
    /// `upload_kbps[p]` gives each peer's upload capacity; seeds occupy the
    /// **last** `seeds` indices.
    ///
    /// # Panics
    ///
    /// Panics if `upload_kbps.len() != leechers + seeds` or any capacity is
    /// non-positive.
    #[must_use]
    pub fn new(config: SwarmConfig, upload_kbps: &[f64]) -> Self {
        let behaviors = vec![PeerBehavior::Compliant; config.leechers + config.seeds];
        Self::with_behaviors(config, upload_kbps, &behaviors)
    }

    /// Builds a swarm with an explicit per-peer [`PeerBehavior`] mix (see
    /// the `behavior` module docs). [`Swarm::new`] is the all-compliant
    /// special case and behaves identically to it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Swarm::new`], or if
    /// `behaviors.len()` disagrees with the peer count.
    #[must_use]
    pub fn with_behaviors(
        config: SwarmConfig,
        upload_kbps: &[f64],
        behaviors: &[PeerBehavior],
    ) -> Self {
        let n = config.leechers + config.seeds;
        assert_eq!(upload_kbps.len(), n, "need one upload capacity per peer");
        assert_eq!(behaviors.len(), n, "need one behavior per peer");
        assert!(
            upload_kbps.iter().all(|&u| u.is_finite() && u > 0.0),
            "upload capacities must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Tracker overlay: Erdős–Rényi with the requested expected degree
        // (identical RNG consumption to the reference construction). Rows
        // start exactly full (capacity = degree); sessions add slack via
        // `reserve_overlay_slack` before mutating membership.
        let overlay = generators::erdos_renyi_mean_degree(n, config.mean_neighbors, &mut rng);
        let mut row_off = Vec::with_capacity(n + 1);
        row_off.push(0usize);
        let mut nbr: Vec<u32> = Vec::new();
        for p in 0..n {
            for v in overlay.neighbors(NodeId::new(p)) {
                nbr.push(v.index() as u32);
            }
            row_off.push(nbr.len());
        }
        let deg: Vec<u32> = (0..n)
            .map(|p| (row_off[p + 1] - row_off[p]) as u32)
            .collect();
        // Reverse-edge index: slot of (q → p) for every slot (p → q), built
        // with one counting-sort cursor pass instead of a hash map (the
        // construction bottleneck at n ≫ 10⁵). Overlay rows ascend by
        // neighbour id, so for a fixed target q the slots (p → q) are
        // visited (outer loop p ascending) in exactly the order of q's own
        // row — the k-th visit of target q is the reverse of q's k-th slot.
        let mut rev = vec![0u32; nbr.len()];
        let mut cursor: Vec<usize> = row_off[..n].to_vec();
        for p in 0..n {
            for e in row_off[p]..row_off[p + 1] {
                let q = nbr[e] as usize;
                rev[e] = cursor[q] as u32;
                cursor[q] += 1;
            }
        }
        debug_assert!((0..nbr.len()).all(|e| rev[rev[e] as usize] as usize == e));

        // Piece initialization draws in peer order, exactly like the
        // reference engine.
        let mut pieces = Vec::with_capacity(n);
        for p in 0..n {
            if p >= config.leechers {
                pieces.push(PieceSet::full(config.piece_count));
            } else {
                let mut set = PieceSet::new(config.piece_count);
                for i in 0..config.piece_count {
                    if rng.gen_bool(config.initial_completion) {
                        set.insert(i);
                    }
                }
                pieces.push(set);
            }
        }
        // A leecher may complete by lucky initialization.
        let completed_round: Vec<Option<u64>> = (0..n)
            .map(|p| (p < config.leechers && pieces[p].is_complete()).then_some(0))
            .collect();
        let completed_total = completed_round.iter().filter(|c| c.is_some()).count();
        let seeding_now = pieces.iter().filter(|set| set.is_complete()).count();
        let downloading_now = n - seeding_now;

        let mut availability = vec![0u32; config.piece_count];
        for set in &pieces {
            for (i, a) in availability.iter_mut().enumerate() {
                *a += u32::from(set.contains(i));
            }
        }

        let edges = nbr.len();
        let stride = config.tft_slots;
        Self {
            rng,
            row_off,
            deg,
            nbr,
            rev,
            upload_kbps: upload_kbps.to_vec(),
            behavior: behaviors.to_vec(),
            pieces,
            completed_round,
            original_seed: (0..n).map(|p| p >= config.leechers).collect(),
            present: vec![true; n],
            free: Vec::new(),
            live_bound: n,
            stream_id: (0..n as u32).collect(),
            reuse_stack: Vec::new(),
            logical_len: n as u64,
            grow_row_cap: (config.mean_neighbors.ceil() as usize)
                .saturating_mul(2)
                .max(4),
            total_up: vec![0.0; n],
            total_down: vec![0.0; n],
            tft_up: vec![0.0; n],
            tft_down: vec![0.0; n],
            received_prev: vec![0.0; edges],
            received_curr: vec![0.0; edges],
            received_curr_stale: false,
            credit: vec![0.0; edges],
            tft_store: vec![0; n * stride],
            tft_len: vec![0; n],
            optimistic: vec![NO_OPT; n],
            avail: AvailIndex::from_counts(availability),
            round: 0,
            downloading_now,
            seeding_now,
            completed_total,
            uploads_now: vec![false; n],
            acts_seed_now: vec![false; n],
            loss_prob: 0.0,
            loss_seed: 0,
            lost_deliveries: 0,
            lost_kbit_by_peer: vec![0.0; n],
            lost_kbit_departed: 0.0,
            scratch: Scratch::default(),
            par: ParBuffers::default(),
            config,
        }
    }

    /// Arms per-delivery transfer loss: every delivery is independently
    /// dropped with probability `prob`, drawn from the fault stream
    /// family of `fault_seed` keyed by `(round, recipient edge slot)` —
    /// identical schedules for the serial and parallel engines at any
    /// thread count. The sender still spends its upload capacity; the
    /// recipient receives no rate, credit or pieces. `prob = 0` disables
    /// the hook (the default; zero overhead).
    ///
    /// # Panics
    ///
    /// Panics unless `prob` is a finite probability in `[0, 1]`.
    pub fn set_transfer_loss(&mut self, prob: f64, fault_seed: u64) {
        assert!(
            prob.is_finite() && (0.0..=1.0).contains(&prob),
            "loss probability must be in [0, 1], got {prob}"
        );
        self.loss_prob = prob;
        self.loss_seed = fault_seed;
    }

    /// Number of deliveries dropped by transfer loss so far.
    #[must_use]
    pub fn lost_deliveries(&self) -> u64 {
        self.lost_deliveries
    }

    /// Total kbit dropped by transfer loss so far (upload capacity spent
    /// by senders that never reached a recipient). Summed over the
    /// per-recipient accumulators in peer order, so the value is
    /// thread-count independent.
    #[must_use]
    pub fn lost_kbit(&self) -> f64 {
        self.lost_kbit_departed + self.lost_kbit_by_peer.iter().sum::<f64>()
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// Number of arena slots (present peers plus free-listed departed
    /// slots; equal to the peer count on closed swarms).
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.upload_kbps.len()
    }

    /// Whether arena slot `p` currently hosts a present peer.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn is_present(&self, p: PeerId) -> bool {
        self.present[p]
    }

    /// Read access to peer `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn peer(&self, p: PeerId) -> Peer<'_> {
        assert!(p < self.peer_count(), "peer {p} out of range");
        Peer { swarm: self, id: p }
    }

    /// Overlay neighbours of `p`, in adjacency order.
    pub fn neighbors(&self, p: PeerId) -> impl ExactSizeIterator<Item = PeerId> + '_ {
        self.nbr[self.row_off[p]..self.row_off[p] + self.deg[p] as usize]
            .iter()
            .map(|&q| q as PeerId)
    }

    /// Live overlay degree of `p`.
    #[must_use]
    pub fn degree(&self, p: PeerId) -> usize {
        self.deg[p] as usize
    }

    /// Allocated overlay-row capacity of `p` (an edge can only be added
    /// while the live degree is below it).
    #[must_use]
    pub fn row_capacity(&self, p: PeerId) -> usize {
        self.row_off[p + 1] - self.row_off[p]
    }

    /// Rounds simulated so far.
    #[must_use]
    pub fn round_count(&self) -> u64 {
        self.round
    }

    /// Global availability (present-holder count) per piece.
    #[must_use]
    pub fn availability(&self) -> &[u32] {
        self.avail.counts()
    }

    /// The present-population split (downloading vs seeding peers),
    /// tracked incrementally across transfers, arrivals and departures.
    #[must_use]
    pub fn population(&self) -> Population {
        Population {
            downloading: self.downloading_now,
            seeding: self.seeding_now,
        }
    }

    /// Cumulative number of download completions: every peer that entered
    /// incomplete and finished the file, **including** peers that have
    /// since departed. Equals [`Swarm::completed_count`] on closed swarms.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed_total
    }

    /// Number of leechers that completed the file (cumulative; see
    /// [`Swarm::completed`], which this forwards to).
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed()
    }

    /// The peers `p` is currently TFT-unchoking.
    #[must_use]
    pub fn tft_unchoked(&self, p: PeerId) -> Vec<PeerId> {
        let stride = self.config.tft_slots;
        let base = self.row_off[p];
        self.tft_store[p * stride..p * stride + self.tft_len[p] as usize]
            .iter()
            .map(|&k| self.nbr[base + k as usize] as PeerId)
            .collect()
    }

    /// The peer `p` is currently optimistically unchoking, if any.
    #[must_use]
    pub fn optimistic_unchoked(&self, p: PeerId) -> Option<PeerId> {
        let k = self.optimistic[p];
        (k != NO_OPT).then(|| self.nbr[self.row_off[p] + k as usize] as PeerId)
    }

    /// Simulates one round (rechoke, then transfer) under the serial
    /// semantics — bit-identical to
    /// [`reference::RefSwarm::round`](crate::reference::RefSwarm::round).
    pub fn round(&mut self) {
        self.round_observed(&NullObserver);
    }

    /// [`round`](Self::round) with a [`RunObserver`] tap. The observer is
    /// a pure `&self` tap — attaching one changes no swarm state and
    /// consumes no randomness. A disabled observer (`O::ENABLED = false`,
    /// e.g. [`NullObserver`]) dispatches to the crate's own non-generic
    /// round, so out-of-crate callers pay no re-instantiation penalty —
    /// the unobserved path is exactly [`round`](Self::round)'s code
    /// wherever it is called from.
    pub fn round_with<O: RunObserver>(&mut self, obs: &O) {
        if !O::ENABLED {
            return self.round();
        }
        self.round_observed(obs);
    }

    /// The round body shared by [`round`](Self::round) (which pins the
    /// in-crate `NullObserver` instantiation) and the enabled arm of
    /// [`round_with`](Self::round_with).
    fn round_observed<O: RunObserver>(&mut self, obs: &O) {
        if self.received_curr_stale {
            self.received_curr.fill(0.0);
            self.received_curr_stale = false;
        }
        self.refresh_round_flags();
        self.rechoke(obs);
        self.transfer(obs);
        if O::ENABLED {
            obs.round_end(self.round);
        }
        self.round += 1;
        std::mem::swap(&mut self.received_prev, &mut self.received_curr);
        self.received_curr.fill(0.0);
    }

    /// Runs `rounds` serial rounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use strat_bittorrent::{Swarm, SwarmConfig};
    ///
    /// let config = SwarmConfig::builder()
    ///     .leechers(20)
    ///     .seeds(1)
    ///     .piece_count(32)
    ///     .piece_size_kbit(100.0)
    ///     .seed(7)
    ///     .build();
    /// let mut swarm = Swarm::new(config, &vec![500.0; 21]);
    /// swarm.run_rounds(30);
    /// assert_eq!(swarm.round_count(), 30);
    /// // Same seed, same history: the engine is deterministic.
    /// assert!(swarm.peer(0).total_downloaded() > 0.0);
    /// ```
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// [`run_rounds`](Self::run_rounds) with a [`RunObserver`] tap. A
    /// disabled observer dispatches to [`run_rounds`](Self::run_rounds).
    pub fn run_rounds_with<O: RunObserver>(&mut self, rounds: u64, obs: &O) {
        if !O::ENABLED {
            return self.run_rounds(rounds);
        }
        for _ in 0..rounds {
            self.round_observed(obs);
        }
    }

    /// Runs `rounds` rounds under the **indexed-stream** semantics across
    /// up to `threads` worker threads.
    ///
    /// Per-peer randomness derives from `(seed, round, peer index)` and
    /// every phase writes only peer-owned state, so the outcome is
    /// **bit-identical for any thread count** (including 1) — the
    /// workspace `strat-par` determinism contract. The semantics differ
    /// from [`Swarm::round`] only in the randomness source and in reading
    /// piece/availability state from the start-of-round snapshot (see
    /// [`reference::RefSwarm::round_indexed`](crate::reference::RefSwarm::round_indexed),
    /// the serial oracle this method is differentially tested against).
    ///
    /// Round structure: a parallel rechoke-and-flows pass over senders
    /// (which also refreshes the per-peer flags and piece snapshot
    /// chunk-locally and scatters flows into recipient-row mailboxes),
    /// then a parallel delivery pass over recipients draining those
    /// mailboxes contiguously, then an `O(touched pieces)` sharded
    /// availability merge in worker order.
    pub fn run_rounds_parallel(&mut self, rounds: u64, threads: usize) {
        self.run_rounds_parallel_observed(rounds, threads, &NullObserver);
    }

    /// [`run_rounds_parallel`](Self::run_rounds_parallel) with a
    /// [`RunObserver`] tap shared by all workers. Event *aggregates* are
    /// thread-invariant (see [`crate::observer`] for the ordering
    /// contract); the swarm state itself stays bit-identical for any
    /// thread count and any observer. A disabled observer dispatches to
    /// the crate's own non-generic path.
    pub fn run_rounds_parallel_with<O: RunObserver>(
        &mut self,
        rounds: u64,
        threads: usize,
        obs: &O,
    ) {
        if !O::ENABLED {
            return self.run_rounds_parallel(rounds, threads);
        }
        self.run_rounds_parallel_observed(rounds, threads, obs);
    }

    /// The parallel-round body shared by the non-generic entry point and
    /// the enabled arm of
    /// [`run_rounds_parallel_with`](Self::run_rounds_parallel_with).
    fn run_rounds_parallel_observed<O: RunObserver>(
        &mut self,
        rounds: u64,
        threads: usize,
        obs: &O,
    ) {
        let n = self.peer_count();
        if rounds == 0 || n == 0 {
            return;
        }
        // Workers partition the live prefix only: dead slots past
        // `live_bound` have no edges, draw nothing and write nothing, so
        // skipping them changes no observable state.
        let lb = self.live_bound;
        let threads = threads.max(1);
        let fluid = self.config.fluid_content;
        let piece_count = self.config.piece_count;
        let ranges: Vec<Range<usize>> = strat_par::chunk_ranges(lb as u64, threads)
            .into_iter()
            .map(|r| r.start as usize..r.end as usize)
            .collect();
        let workers = ranges.len();
        // Persistent buffers: sized on first use, reused by every round of
        // every later call (worker-count changes only resize the per-worker
        // vectors). The flow mailbox is rebuilt whenever the edge arena
        // was re-laid-out — a fresh mailbox is all-zero, which is exactly
        // the between-rounds invariant.
        let mut par = std::mem::take(&mut self.par);
        if par.flow.len() != self.nbr.len() {
            par.flow = std::iter::repeat_with(|| AtomicU64::new(0))
                .take(self.nbr.len())
                .collect();
        }
        par.shards.resize_with(workers, AvailShard::default);
        par.completions.resize(workers, 0);
        par.lost.resize(workers, 0);
        if !fluid {
            if par.pieces_prev.len() != n {
                par.pieces_prev = self.pieces.clone();
            }
            for shard in &mut par.shards {
                shard.reset(piece_count);
            }
        }
        par.scratches.resize_with(workers, Scratch::default);

        for _ in 0..rounds {
            if !fluid {
                par.avail_prev.clone_from(&self.avail);
            }
            self.par_rechoke_and_flows(
                &ranges,
                &mut par.scratches,
                if fluid { &mut [] } else { &mut par.pieces_prev },
                &par.flow,
                obs,
            );
            self.par_delivery(
                &ranges,
                &par.flow,
                &par.pieces_prev,
                &par.avail_prev,
                &mut par.shards,
                &mut par.completions,
                &mut par.lost,
                &mut par.scratches,
                obs,
            );
            for l in &mut par.lost {
                self.lost_deliveries += *l;
                *l = 0;
            }
            if !fluid {
                for shard in &mut par.shards {
                    self.avail.merge_shard(shard);
                }
                for c in &mut par.completions {
                    self.completed_total += *c;
                    self.downloading_now -= *c;
                    self.seeding_now += *c;
                    *c = 0;
                }
            }
            if O::ENABLED {
                obs.round_end(self.round);
            }
            self.round += 1;
            // No reset sweep: slack slots and departed rows are zero in
            // both arrays (membership ops maintain that), and the next
            // round's pass 2 *stores* into every live slot of present
            // rows, so the stale receipts left in the new current array
            // are never read. `received_curr_stale` makes the serial
            // round (which accumulates with `+=`) clear lazily instead.
            std::mem::swap(&mut self.received_prev, &mut self.received_curr);
            self.received_curr_stale = true;
        }
        self.par = par;
    }

    /// Whether `q` is interested in `p`'s content.
    ///
    /// Fluid mode: non-seed peers are always interested (content never
    /// bottlenecks, §6); seeds are interested in nobody.
    ///
    /// The completion fast paths are exact: a complete `q` lacks nothing
    /// (never interested), and a complete `p` holds every piece an
    /// incomplete `q` lacks (always interesting) — both `O(1)` instead of
    /// a bitset scan.
    #[inline]
    fn interested(&self, q: PeerId, p: PeerId) -> bool {
        interested_at(
            self.config.fluid_content,
            &self.original_seed,
            &self.pieces,
            q,
            p,
        )
    }

    /// Whether `p` rechokes like a seed (no reciprocation signal).
    #[inline]
    fn acts_as_seed(&self, p: PeerId) -> bool {
        acts_seed_at(
            &self.config,
            &self.behavior,
            &self.pieces,
            &self.original_seed,
            p,
        )
    }

    /// Whether `p` currently uploads at all (absent slots never do).
    #[inline]
    fn uploads(&self, p: PeerId) -> bool {
        uploads_at(
            &self.config,
            &self.present,
            &self.behavior,
            &self.pieces,
            &self.original_seed,
            p,
        )
    }

    /// Caches the completion-dependent flags once per round (the serial
    /// round's per-round completion cache; the parallel pass evaluates
    /// the same predicates worker-locally instead). Nothing the rechoke
    /// phase does can change them, so the per-peer recomputation the
    /// reference engine performs inside its rechoke loop is redundant.
    /// Only the live prefix needs refreshing: every consumer iterates
    /// below `live_bound`.
    fn refresh_round_flags(&mut self) {
        for p in 0..self.live_bound {
            self.uploads_now[p] = self.uploads(p);
            self.acts_seed_now[p] = self.acts_as_seed(p);
        }
    }

    /// Tight exclusive upper bound on the present arena slots (see the
    /// `live_bound` field).
    pub(crate) fn live_slot_bound(&self) -> usize {
        self.live_bound
    }

    /// Indexed-stream identity of slot `p`: the logical peer index its
    /// `(seed, round, stream)` ChaCha streams are keyed by, and the slot
    /// the same peer occupies on a never-compacted twin. Equal to `p`
    /// until [`Swarm::compact`] remaps slots.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn stream_of(&self, p: PeerId) -> usize {
        self.stream_id[p] as usize
    }

    fn rechoke<O: RunObserver>(&mut self, obs: &O) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let Swarm {
            ref config,
            ref row_off,
            ref deg,
            ref nbr,
            ref pieces,
            ref original_seed,
            ref received_prev,
            ref uploads_now,
            ref acts_seed_now,
            ref mut rng,
            ref mut tft_store,
            ref mut tft_len,
            ref mut optimistic,
            round,
            live_bound,
            ..
        } = *self;
        let stride = config.tft_slots;
        let fluid = config.fluid_content;
        let rotate_optimistic = round.is_multiple_of(u64::from(config.optimistic_period));
        for p in 0..live_bound {
            if !uploads_now[p] {
                tft_len[p] = 0;
                optimistic[p] = NO_OPT;
                continue;
            }
            let base = row_off[p];
            let opt = choke_policy(
                &mut scratch,
                rng,
                deg[p] as usize,
                |k| interested_at(fluid, original_seed, pieces, nbr[base + k] as usize, p),
                |k| received_prev[base + k],
                acts_seed_now[p],
                stride,
                config.optimistic_slots,
                rotate_optimistic,
                optimistic[p],
            );
            tft_len[p] = scratch.ranked.len() as u32;
            tft_store[p * stride..p * stride + scratch.ranked.len()]
                .copy_from_slice(&scratch.ranked);
            optimistic[p] = opt;
            if O::ENABLED {
                let t = round as f64;
                for &k in &scratch.ranked {
                    obs.unchoke(t, p, nbr[base + k as usize] as usize, false);
                }
                if opt != NO_OPT {
                    obs.unchoke(t, p, nbr[base + opt as usize] as usize, true);
                }
            }
        }
        self.scratch = scratch;
    }

    fn transfer<O: RunObserver>(&mut self, obs: &O) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let stride = self.config.tft_slots;
        let round_seconds = self.config.round_seconds;
        for p in 0..self.live_bound {
            // Live check (not the round cache): a peer that completed
            // earlier in this transfer phase may stop uploading mid-round
            // when `seed_after_completion` is off, exactly like the
            // reference engine.
            if !self.uploads(p) {
                continue;
            }
            // Active flows: unchoked positions whose peer is (still)
            // interested in p.
            scratch.targets.clear();
            for s in 0..self.tft_len[p] as usize {
                scratch.targets.push((self.tft_store[p * stride + s], true));
            }
            let opt = self.optimistic[p];
            if opt != NO_OPT && !scratch.targets.iter().any(|&(k, _)| k == opt) {
                scratch.targets.push((opt, false));
            }
            let base = self.row_off[p];
            scratch
                .targets
                .retain(|&(k, _)| self.interested(self.nbr[base + k as usize] as usize, p));
            if scratch.targets.is_empty() {
                continue;
            }
            let share = self.upload_kbps[p] * round_seconds / scratch.targets.len() as f64;
            for &(k, is_tft) in &scratch.targets {
                self.deliver(p, base + k as usize, share, is_tft, &mut scratch.picks, obs);
            }
        }
        self.scratch = scratch;
    }

    /// Delivers `kbit` from `p` along its edge slot `e`, converting credit
    /// into rarest-first pieces (prefetched into `picks`).
    fn deliver<O: RunObserver>(
        &mut self,
        p: PeerId,
        e: usize,
        kbit: f64,
        is_tft: bool,
        picks: &mut Vec<u64>,
        obs: &O,
    ) {
        let q = self.nbr[e] as usize;
        let er = self.rev[e] as usize;
        let t = self.round as f64;
        if self.loss_prob > 0.0
            && crate::faults::loss_drawn(self.loss_seed, self.round, er, self.loss_prob)
        {
            // Lost in transit: the sender spends the capacity, the
            // recipient sees nothing (no rate signal, credit or pieces).
            self.total_up[p] += kbit;
            if is_tft {
                self.tft_up[p] += kbit;
            }
            self.lost_deliveries += 1;
            self.lost_kbit_by_peer[q] += kbit;
            if O::ENABLED {
                obs.transfer_lost(t, p, q, kbit);
            }
            return;
        }
        self.total_up[p] += kbit;
        self.total_down[q] += kbit;
        if is_tft {
            self.tft_up[p] += kbit;
            self.tft_down[q] += kbit;
        }
        self.received_curr[er] += kbit;
        if O::ENABLED {
            obs.transfer(t, p, q, kbit, is_tft);
        }
        if self.config.fluid_content {
            return; // rates only; no piece bookkeeping in fluid mode
        }
        self.credit[er] += kbit;
        let piece_size = self.config.piece_size_kbit;
        if self.credit[er] < piece_size {
            return;
        }
        // Prefetch the whole pick sequence in one ordered scan (see
        // [`AvailIndex::batch_picks`]); the bound covers every iteration
        // the credit loop can possibly run.
        let want = (self.credit[er] / piece_size) as usize + 2;
        self.avail
            .batch_picks(&self.pieces[q], &self.pieces[p], want, picks);
        let mut used = 0;
        while self.credit[er] >= piece_size {
            let Some(&packed) = picks.get(used) else {
                // Nothing useful left from p this round; credit waits in
                // case p acquires new pieces.
                break;
            };
            used += 1;
            let piece = (packed & u64::from(u32::MAX)) as usize;
            self.credit[er] -= piece_size;
            self.pieces[q].insert(piece);
            self.avail.increment(piece);
            if O::ENABLED {
                obs.piece_converted(t, q, piece);
            }
            if self.pieces[q].is_complete() && self.completed_round[q].is_none() {
                self.completed_round[q] = Some(self.round + 1);
                self.completed_total += 1;
                self.downloading_now -= 1;
                self.seeding_now += 1;
                if O::ENABLED {
                    obs.completed((self.round + 1) as f64, q);
                }
            }
        }
    }

    /// Parallel pass 1: rechoke decisions plus outgoing flow computation.
    /// Every write lands in sender-owned rows (unchoke arena, upload
    /// totals, the sender's own `pieces_prev` snapshot chunk) or in the
    /// sender's uniquely-owned reverse-edge flow slots, so peers
    /// partition freely across workers. Folds the per-round flag refresh
    /// and piece-snapshot copy into the workers (pieces are frozen for
    /// the whole pass, so chunk-local evaluation sees exactly the
    /// start-of-round state).
    fn par_rechoke_and_flows<O: RunObserver>(
        &mut self,
        ranges: &[Range<usize>],
        scratches: &mut [Scratch],
        pieces_prev: &mut [PieceSet],
        flow: &[AtomicU64],
        obs: &O,
    ) {
        let Swarm {
            ref config,
            ref row_off,
            ref deg,
            ref nbr,
            ref rev,
            ref upload_kbps,
            ref behavior,
            ref pieces,
            ref original_seed,
            ref present,
            ref stream_id,
            ref received_prev,
            ref mut tft_store,
            ref mut tft_len,
            ref mut optimistic,
            ref mut total_up,
            ref mut tft_up,
            round,
            ..
        } = *self;
        let stride = config.tft_slots;
        let fluid = config.fluid_content;
        let rotate_optimistic = round.is_multiple_of(u64::from(config.optimistic_period));

        let peer_sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
        let tft_sizes: Vec<usize> = peer_sizes.iter().map(|l| l * stride).collect();

        let tft_store_parts = split_lengths(tft_store, &tft_sizes);
        let tft_len_parts = split_lengths(tft_len, &peer_sizes);
        let opt_parts = split_lengths(optimistic, &peer_sizes);
        let up_parts = split_lengths(total_up, &peer_sizes);
        let tftup_parts = split_lengths(tft_up, &peer_sizes);
        // Fluid mode keeps no piece snapshot; hand every worker an empty
        // chunk.
        let pp_parts: Vec<&mut [PieceSet]> = if pieces_prev.is_empty() {
            ranges.iter().map(|_| Default::default()).collect()
        } else {
            split_lengths(pieces_prev, &peer_sizes)
        };

        std::thread::scope(|scope| {
            let mut tft_store_parts = tft_store_parts.into_iter();
            let mut tft_len_parts = tft_len_parts.into_iter();
            let mut opt_parts = opt_parts.into_iter();
            let mut up_parts = up_parts.into_iter();
            let mut tftup_parts = tftup_parts.into_iter();
            let mut pp_parts = pp_parts.into_iter();
            let mut scratch_parts = scratches.iter_mut();
            for range in ranges {
                let range = range.clone();
                let tft_store_c = tft_store_parts.next().expect("one part per range");
                let tft_len_c = tft_len_parts.next().expect("one part per range");
                let opt_c = opt_parts.next().expect("one part per range");
                let up_c = up_parts.next().expect("one part per range");
                let tftup_c = tftup_parts.next().expect("one part per range");
                let pp_c = pp_parts.next().expect("one part per range");
                let scratch = scratch_parts.next().expect("one scratch per range");
                scope.spawn(move || {
                    let snap = !pp_c.is_empty();
                    for p in range.clone() {
                        let li = p - range.start;
                        if snap {
                            pp_c[li].copy_bits_from(&pieces[p]);
                        }
                        let eb = row_off[p];
                        let ee = eb + deg[p] as usize;
                        if !uploads_at(config, present, behavior, pieces, original_seed, p) {
                            tft_len_c[li] = 0;
                            opt_c[li] = NO_OPT;
                            continue;
                        }
                        let mut rng = peer_round_rng(config.seed, round, stream_id[p] as usize);
                        let opt = choke_policy(
                            scratch,
                            &mut rng,
                            ee - eb,
                            |k| {
                                interested_at(fluid, original_seed, pieces, nbr[eb + k] as usize, p)
                            },
                            |k| received_prev[eb + k],
                            acts_seed_at(config, behavior, pieces, original_seed, p),
                            stride,
                            config.optimistic_slots,
                            rotate_optimistic,
                            opt_c[li],
                        );
                        tft_len_c[li] = scratch.ranked.len() as u32;
                        tft_store_c[li * stride..li * stride + scratch.ranked.len()]
                            .copy_from_slice(&scratch.ranked);
                        opt_c[li] = opt;
                        if O::ENABLED {
                            let t = round as f64;
                            for &k in &scratch.ranked {
                                obs.unchoke(t, p, nbr[eb + k as usize] as usize, false);
                            }
                            if opt != NO_OPT {
                                obs.unchoke(t, p, nbr[eb + opt as usize] as usize, true);
                            }
                        }

                        // Outgoing flows from start-of-round interest. The
                        // choke policy's candidate filter already applied
                        // exactly this interest predicate over the frozen
                        // piece state, so the ranked set and the optimistic
                        // pick need no re-filtering here (the serial
                        // transfer phase re-checks because its pieces
                        // mutate mid-round; this pass's cannot).
                        scratch.targets.clear();
                        for &k in &scratch.ranked {
                            scratch.targets.push((k, true));
                        }
                        if opt != NO_OPT && !scratch.targets.iter().any(|&(k, _)| k == opt) {
                            scratch.targets.push((opt, false));
                        }
                        if scratch.targets.is_empty() {
                            continue;
                        }
                        let share =
                            upload_kbps[p] * config.round_seconds / scratch.targets.len() as f64;
                        for &(k, is_tft) in &scratch.targets {
                            // Scatter into the recipient's row: the
                            // reverse-edge slot has exactly one writer (this
                            // sender), so a relaxed store is race-free and
                            // the scope join publishes it to pass 2.
                            let mailbox = rev[eb + k as usize] as usize;
                            let signed = if is_tft { share } else { -share };
                            flow[mailbox].store(signed.to_bits(), Ordering::Relaxed);
                            up_c[li] += share;
                            if is_tft {
                                tftup_c[li] += share;
                            }
                        }
                    }
                });
            }
        });
    }

    /// Parallel pass 2: recipient-major delivery. Each recipient drains
    /// its incoming flows — read **contiguously** out of its own row of
    /// the flow mailbox (pass 1 scattered them there) and zeroed behind
    /// the read, restoring the all-zero invariant — in ascending
    /// neighbour-slot order, converting credit into rarest-first picks
    /// against the start-of-round piece / availability snapshot;
    /// availability increments accumulate into per-worker shards and
    /// completion counts into per-worker counters, merged serially
    /// afterwards.
    #[allow(clippy::too_many_arguments)] // one slot per worker-owned buffer
    fn par_delivery<O: RunObserver>(
        &mut self,
        ranges: &[Range<usize>],
        flow: &[AtomicU64],
        pieces_prev: &[PieceSet],
        avail_prev: &AvailIndex,
        shards: &mut [AvailShard],
        completions: &mut [usize],
        lost: &mut [u64],
        scratches: &mut [Scratch],
        obs: &O,
    ) {
        let Swarm {
            ref config,
            ref row_off,
            ref deg,
            ref nbr,
            ref mut pieces,
            ref mut completed_round,
            ref mut total_down,
            ref mut tft_down,
            ref mut received_curr,
            ref mut credit,
            ref mut lost_kbit_by_peer,
            loss_prob,
            loss_seed,
            round,
            ..
        } = *self;
        let fluid = config.fluid_content;
        let piece_size = config.piece_size_kbit;

        let peer_sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
        let edge_sizes: Vec<usize> = ranges
            .iter()
            .map(|r| row_off[r.end] - row_off[r.start])
            .collect();

        let pieces_parts = split_lengths(pieces, &peer_sizes);
        let completed_parts = split_lengths(completed_round, &peer_sizes);
        let down_parts = split_lengths(total_down, &peer_sizes);
        let tftdown_parts = split_lengths(tft_down, &peer_sizes);
        let rc_parts = split_lengths(received_curr, &edge_sizes);
        let credit_parts = split_lengths(credit, &edge_sizes);
        let lostk_parts = split_lengths(lost_kbit_by_peer, &peer_sizes);

        std::thread::scope(|scope| {
            let mut pieces_parts = pieces_parts.into_iter();
            let mut completed_parts = completed_parts.into_iter();
            let mut down_parts = down_parts.into_iter();
            let mut tftdown_parts = tftdown_parts.into_iter();
            let mut rc_parts = rc_parts.into_iter();
            let mut credit_parts = credit_parts.into_iter();
            let mut lostk_parts = lostk_parts.into_iter();
            let mut shard_parts = shards.iter_mut();
            let mut comp_parts = completions.iter_mut();
            let mut lost_parts = lost.iter_mut();
            let mut scratch_parts = scratches.iter_mut();
            for range in ranges {
                let range = range.clone();
                let pieces_c = pieces_parts.next().expect("one part per range");
                let completed_c = completed_parts.next().expect("one part per range");
                let down_c = down_parts.next().expect("one part per range");
                let tftdown_c = tftdown_parts.next().expect("one part per range");
                let rc_c = rc_parts.next().expect("one part per range");
                let credit_c = credit_parts.next().expect("one part per range");
                let lostk_c = lostk_parts.next().expect("one part per range");
                let shard = shard_parts.next().expect("one shard per range");
                let comp = comp_parts.next().expect("one counter per range");
                let lost_n = lost_parts.next().expect("one counter per range");
                let scratch = scratch_parts.next().expect("one scratch per range");
                scope.spawn(move || {
                    let edge_base = row_off[range.start];
                    for q in range.clone() {
                        let li = q - range.start;
                        let eb = row_off[q];
                        let ee = eb + deg[q] as usize;
                        for e in eb..ee {
                            let bits = flow[e].load(Ordering::Relaxed);
                            if bits == 0 {
                                // Store semantics: every live slot is
                                // visited exactly once per round, so the
                                // rate window needs no serial reset sweep.
                                rc_c[e - edge_base] = 0.0;
                                continue;
                            }
                            // Restore the all-zero mailbox invariant; the
                            // sign carried the TFT flag, `abs` recovers the
                            // exact share bits pass 1 computed.
                            flow[e].store(0, Ordering::Relaxed);
                            let signed = f64::from_bits(bits);
                            let is_tft = signed > 0.0;
                            let f = signed.abs();
                            if loss_prob > 0.0
                                && crate::faults::loss_drawn(loss_seed, round, e, loss_prob)
                            {
                                // Lost in transit: the sender's pass-1
                                // capacity accounting stands, the
                                // recipient records nothing.
                                *lost_n += 1;
                                lostk_c[li] += f;
                                rc_c[e - edge_base] = 0.0;
                                if O::ENABLED {
                                    obs.transfer_lost(round as f64, nbr[e] as usize, q, f);
                                }
                                continue;
                            }
                            down_c[li] += f;
                            if is_tft {
                                tftdown_c[li] += f;
                            }
                            rc_c[e - edge_base] = f;
                            if O::ENABLED {
                                obs.transfer(round as f64, nbr[e] as usize, q, f, is_tft);
                            }
                            if fluid {
                                continue;
                            }
                            let cr = &mut credit_c[e - edge_base];
                            *cr += f;
                            if *cr < piece_size {
                                continue;
                            }
                            let p = nbr[e] as usize;
                            let want = (*cr / piece_size) as usize + 2;
                            avail_prev.batch_picks(
                                &pieces_c[li],
                                &pieces_prev[p],
                                want,
                                &mut scratch.picks,
                            );
                            let mut used = 0;
                            while *cr >= piece_size {
                                let Some(&packed) = scratch.picks.get(used) else {
                                    break;
                                };
                                used += 1;
                                let piece = (packed & u64::from(u32::MAX)) as usize;
                                *cr -= piece_size;
                                pieces_c[li].insert(piece);
                                shard.add(piece);
                                if O::ENABLED {
                                    obs.piece_converted(round as f64, q, piece);
                                }
                                if pieces_c[li].is_complete() && completed_c[li].is_none() {
                                    completed_c[li] = Some(round + 1);
                                    *comp += 1;
                                    if O::ENABLED {
                                        obs.completed((round + 1) as f64, q);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    // ------------------------------------------------------------------
    // Open-membership primitives (driven by `crate::session`).
    // ------------------------------------------------------------------

    /// Re-lays out the overlay arena so every row has `extra` spare
    /// neighbour slots beyond its live degree. Live edges, their
    /// rate/credit state and within-row order are preserved exactly;
    /// only the allocation changes, so rounds behave identically before
    /// and after. Sessions call this once at construction so tracker
    /// rewiring has room to splice in new edges.
    pub fn reserve_overlay_slack(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let n = self.peer_count();
        let old_off = std::mem::take(&mut self.row_off);
        let mut new_off = Vec::with_capacity(n + 1);
        new_off.push(0usize);
        for p in 0..n {
            new_off.push(new_off[p] + self.deg[p] as usize + extra);
        }
        let total = new_off[n];
        let mut nbr = vec![0u32; total];
        let mut rev = vec![0u32; total];
        let mut received_prev = vec![0.0; total];
        let mut received_curr = vec![0.0; total];
        let mut credit = vec![0.0; total];
        for p in 0..n {
            for k in 0..self.deg[p] as usize {
                let old_e = old_off[p] + k;
                let q = self.nbr[old_e] as usize;
                let local_er = self.rev[old_e] as usize - old_off[q];
                let e = new_off[p] + k;
                nbr[e] = q as u32;
                rev[e] = (new_off[q] + local_er) as u32;
                received_prev[e] = self.received_prev[old_e];
                received_curr[e] = self.received_curr[old_e];
                credit[e] = self.credit[old_e];
            }
        }
        self.row_off = new_off;
        self.nbr = nbr;
        self.rev = rev;
        self.received_prev = received_prev;
        self.received_curr = received_curr;
        self.credit = credit;
        self.grow_row_cap = self
            .grow_row_cap
            .max(self.config.mean_neighbors.ceil() as usize + extra);
        // Edge-aligned parallel buffers are stale; rebuild on next use.
        self.par = ParBuffers::default();
    }

    /// Admits a peer into the swarm: reuses a free-listed departed slot
    /// when one exists, otherwise grows the arena by one slot with
    /// `row_cap` neighbour-slot capacity. The peer starts with no
    /// overlay edges (wire it with [`Swarm::connect_peers`]); its pieces
    /// join the availability index incrementally. A complete arrival
    /// counts as an original seed (it never "completes a download").
    ///
    /// Returns the arena slot hosting the peer.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is non-positive or `pieces` covers a
    /// different file.
    pub fn arrive(&mut self, upload_kbps: f64, behavior: PeerBehavior, pieces: PieceSet) -> PeerId {
        assert!(
            upload_kbps.is_finite() && upload_kbps > 0.0,
            "upload capacities must be positive"
        );
        assert_eq!(
            pieces.piece_count(),
            self.config.piece_count,
            "piece count mismatch"
        );
        let complete = pieces.is_complete();
        let p = match self.free.pop() {
            Some(slot) => {
                // The reuse stack moves in lockstep with the free list
                // (same LIFO order), so the popped entry is this slot's
                // own stream and capacity pre-compaction — and the dead
                // slot's identity this arrival would have inherited in
                // the uncompacted twin post-compaction.
                let (stream, cap) = self
                    .reuse_stack
                    .pop()
                    .expect("reuse stack tracks the free list");
                let slot = slot as usize;
                debug_assert_eq!(cap as usize, self.row_capacity(slot));
                self.stream_id[slot] = stream;
                slot
            }
            None => match self.reuse_stack.pop() {
                // Post-compaction: the dead slot itself is gone, but its
                // stream id and row capacity live on in a fresh slot, so
                // randomness and wiring acceptance match the uncompacted
                // twin exactly.
                Some((stream, cap)) => self.grow_one_slot(cap as usize, stream),
                None => {
                    let stream = self.logical_len as u32;
                    self.logical_len += 1;
                    self.grow_one_slot(self.grow_row_cap, stream)
                }
            },
        };
        debug_assert!(!self.present[p] && self.deg[p] == 0);
        self.present[p] = true;
        self.live_bound = self.live_bound.max(p + 1);
        self.upload_kbps[p] = upload_kbps;
        self.behavior[p] = behavior;
        for i in pieces.ones() {
            self.avail.increment(i);
        }
        self.pieces[p] = pieces;
        self.completed_round[p] = None;
        self.original_seed[p] = complete;
        self.total_up[p] = 0.0;
        self.total_down[p] = 0.0;
        self.tft_up[p] = 0.0;
        self.tft_down[p] = 0.0;
        self.tft_len[p] = 0;
        self.optimistic[p] = NO_OPT;
        if complete {
            self.seeding_now += 1;
        } else {
            self.downloading_now += 1;
        }
        p
    }

    /// Appends one empty arena slot with the given row capacity and
    /// indexed-stream identity and returns it absent. Fresh growth hands
    /// the growth capacity (tracking the slack of
    /// [`Swarm::reserve_overlay_slack`], with a floor of twice the
    /// configured mean degree) and the next logical stream; reuse-driven
    /// growth after compaction carries a dead slot's capacity and stream
    /// instead.
    fn grow_one_slot(&mut self, row_cap: usize, stream: u32) -> PeerId {
        let p = self.peer_count();
        let end = self.row_off[p] + row_cap;
        self.row_off.push(end);
        self.nbr.resize(end, 0);
        self.rev.resize(end, 0);
        self.received_prev.resize(end, 0.0);
        self.received_curr.resize(end, 0.0);
        self.credit.resize(end, 0.0);
        self.deg.push(0);
        self.upload_kbps.push(1.0);
        self.behavior.push(PeerBehavior::Compliant);
        self.pieces.push(PieceSet::new(self.config.piece_count));
        self.completed_round.push(None);
        self.original_seed.push(false);
        self.present.push(false);
        self.total_up.push(0.0);
        self.total_down.push(0.0);
        self.tft_up.push(0.0);
        self.tft_down.push(0.0);
        self.lost_kbit_by_peer.push(0.0);
        self.tft_store.resize((p + 1) * self.config.tft_slots, 0);
        self.tft_len.push(0);
        self.optimistic.push(NO_OPT);
        self.uploads_now.push(false);
        self.acts_seed_now.push(false);
        self.stream_id.push(stream);
        p
    }

    /// Sets the upload capacity of present peer `p` (kbps). The value
    /// takes effect at the next round's share computation — this is the
    /// universe layer's capacity-split write at rechoke boundaries.
    /// Writing a peer's current capacity back is a bitwise no-op.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or absent, or `kbps` is
    /// non-positive.
    pub fn set_upload_kbps(&mut self, p: PeerId, kbps: f64) {
        assert!(self.present[p], "peer {p} is not present");
        assert!(
            kbps.is_finite() && kbps > 0.0,
            "upload capacities must be positive"
        );
        self.upload_kbps[p] = kbps;
    }

    /// Removes peer `p` from the swarm: unlinks every overlay edge
    /// (patching the reverse-edge index in place), withdraws its pieces
    /// from the availability index, and free-lists the slot for reuse by
    /// a later [`Swarm::arrive`]. Cumulative transfer totals stay
    /// readable until the slot is reused.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already absent.
    pub fn depart(&mut self, p: PeerId) {
        assert!(self.present[p], "peer {p} is not present");
        while self.deg[p] > 0 {
            self.remove_edge_at(p, self.deg[p] as usize - 1);
        }
        let complete = self.pieces[p].is_complete();
        let Swarm {
            ref pieces,
            ref mut avail,
            ..
        } = *self;
        for i in pieces[p].ones() {
            avail.decrement(i);
        }
        self.pieces[p].clear();
        self.completed_round[p] = None;
        if complete {
            self.seeding_now -= 1;
        } else {
            self.downloading_now -= 1;
        }
        self.present[p] = false;
        self.tft_len[p] = 0;
        self.optimistic[p] = NO_OPT;
        self.free.push(p as u32);
        self.reuse_stack
            .push((self.stream_id[p], self.row_capacity(p) as u32));
        // Keep the live bound tight: each scan step undoes one earlier
        // arrival's increment, so maintenance stays amortized O(1).
        while self.live_bound > 0 && !self.present[self.live_bound - 1] {
            self.live_bound -= 1;
        }
    }

    /// Crashes peer `p`: the fault-plane entry point for abrupt
    /// departures. At the arena level a crash performs exactly the
    /// overlay surgery of [`Swarm::depart`] — every edge is severed with
    /// its rate/credit slots zeroed, pieces leave the availability index,
    /// the slot is free-listed — because a half-removed peer would break
    /// the engine's structural invariants. What makes a crash *abrupt*
    /// is what does **not** happen: the session layer records no
    /// completion, draws no graceful-leave randomness and exempts no one
    /// but itself (see `session::Session`'s fault passes).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already absent.
    pub fn crash(&mut self, p: PeerId) {
        self.depart(p);
    }

    /// Free-listed dead arena slots (the compaction trigger's numerator:
    /// `peer_count() - dead_slots()` peers are present).
    #[must_use]
    pub fn dead_slots(&self) -> usize {
        self.free.len()
    }

    /// Compacts the arena: every present peer moves onto the dense slot
    /// prefix `0..population` **in slot order**, and the free-listed dead
    /// slots are dropped entirely. Returns the old-slot → new-slot map
    /// (`u32::MAX` for dropped slots) so callers holding slot-keyed state
    /// (e.g. the session layer) can follow the move.
    ///
    /// What survives, exactly:
    ///
    /// * live overlay rows keep their **capacities** (capacity is
    ///   observable through [`Swarm::connect_peers`]' full-row
    ///   rejection), their edge order, and every per-edge value; the
    ///   reverse-edge index is recomputed from the preserved local
    ///   positions;
    /// * each peer keeps its indexed-stream identity (`stream_id`), so
    ///   parallel rounds draw exactly the randomness the uncompacted twin
    ///   would — and the reuse stack is kept while the free list is
    ///   cleared, so arrivals that would have recycled a dead slot grow a
    ///   fresh slot carrying the dead slot's stream and capacity instead;
    /// * dead slots' loss accumulators fold into a departed-total bucket
    ///   ([`Swarm::lost_kbit`] is conserved); their cumulative transfer
    ///   totals (readable until reuse on the uncompacted twin) are
    ///   dropped.
    ///
    /// The **serial** round draws peer randomness from one shared stream
    /// in slot order, so a compacted swarm's serial rounds diverge from
    /// its uncompacted twin once churn resumes; the indexed-stream
    /// parallel rounds ([`Swarm::run_rounds_parallel`]) stay bit-identical.
    pub fn compact(&mut self) -> Vec<u32> {
        const DEAD: u32 = u32::MAX;
        let n = self.peer_count();
        let mut remap = vec![DEAD; n];
        let mut live = 0usize;
        for p in 0..n {
            if self.present[p] {
                remap[p] = live as u32;
                live += 1;
            }
        }
        if live == n {
            return remap;
        }
        // New row offsets: live rows keep their exact capacities.
        let old_off = std::mem::take(&mut self.row_off);
        let mut new_off = Vec::with_capacity(live + 1);
        new_off.push(0usize);
        for p in 0..n {
            if self.present[p] {
                let cap = old_off[p + 1] - old_off[p];
                new_off.push(new_off[new_off.len() - 1] + cap);
            }
        }
        // Rewrite nbr/rev in place at their old positions first: the
        // reverse index needs the old offsets of both endpoints to
        // recover each edge's local position in its partner's row.
        for p in 0..n {
            if !self.present[p] {
                continue;
            }
            for k in 0..self.deg[p] as usize {
                let e = old_off[p] + k;
                let q = self.nbr[e] as usize;
                let local_er = self.rev[e] as usize - old_off[q];
                self.nbr[e] = remap[q];
                self.rev[e] = (new_off[remap[q] as usize] + local_er) as u32;
            }
        }
        // Slide live rows down to their new offsets (rows only ever move
        // left, so forward in-place copies never overwrite unread data).
        // Whole-capacity copies carry the rows' slack slots, which the
        // membership ops keep zeroed.
        let mut dst_p = 0usize;
        for p in 0..n {
            if !self.present[p] {
                continue;
            }
            let src = old_off[p];
            let cap = old_off[p + 1] - src;
            let dst = new_off[dst_p];
            if dst != src {
                self.nbr.copy_within(src..src + cap, dst);
                self.rev.copy_within(src..src + cap, dst);
                self.received_prev.copy_within(src..src + cap, dst);
                self.received_curr.copy_within(src..src + cap, dst);
                self.credit.copy_within(src..src + cap, dst);
            }
            dst_p += 1;
        }
        let total = new_off[live];
        self.nbr.truncate(total);
        self.rev.truncate(total);
        self.received_prev.truncate(total);
        self.received_curr.truncate(total);
        self.credit.truncate(total);
        self.row_off = new_off;
        // Unchoke rows (fixed stride) slide the same way.
        let stride = self.config.tft_slots;
        let mut dst_p = 0usize;
        for p in 0..n {
            if !self.present[p] {
                continue;
            }
            if dst_p != p {
                self.tft_store
                    .copy_within(p * stride..(p + 1) * stride, dst_p * stride);
            }
            dst_p += 1;
        }
        self.tft_store.truncate(live * stride);
        for p in 0..n {
            if !self.present[p] {
                self.lost_kbit_departed += self.lost_kbit_by_peer[p];
            }
        }
        // Per-peer arrays: order-preserving retain over the present mask.
        fn retain_present<T>(present: &[bool], v: &mut Vec<T>) {
            let mut i = 0;
            v.retain(|_| {
                let keep = present[i];
                i += 1;
                keep
            });
        }
        let present = std::mem::take(&mut self.present);
        retain_present(&present, &mut self.deg);
        retain_present(&present, &mut self.upload_kbps);
        retain_present(&present, &mut self.behavior);
        retain_present(&present, &mut self.pieces);
        retain_present(&present, &mut self.completed_round);
        retain_present(&present, &mut self.original_seed);
        retain_present(&present, &mut self.total_up);
        retain_present(&present, &mut self.total_down);
        retain_present(&present, &mut self.tft_up);
        retain_present(&present, &mut self.tft_down);
        retain_present(&present, &mut self.lost_kbit_by_peer);
        retain_present(&present, &mut self.tft_len);
        retain_present(&present, &mut self.optimistic);
        retain_present(&present, &mut self.uploads_now);
        retain_present(&present, &mut self.acts_seed_now);
        retain_present(&present, &mut self.stream_id);
        self.present = vec![true; live];
        self.free.clear();
        self.live_bound = live;
        // Edge-aligned parallel buffers are stale; rebuild on next use.
        self.par = ParBuffers::default();
        remap
    }

    /// Removes the overlay edge `p – q` if it exists. Returns `false`
    /// without changes when the edge is not present (either endpoint
    /// absent or not neighbours). The inverse of
    /// [`Swarm::connect_peers`]; used by the fault plane to sever
    /// cross-partition edges.
    ///
    /// # Panics
    ///
    /// Panics if either slot is out of range.
    pub fn disconnect_peers(&mut self, p: PeerId, q: PeerId) -> bool {
        if p == q || !self.present[p] || !self.present[q] {
            return false;
        }
        let Some(k) =
            (0..self.deg[p] as usize).find(|&k| self.nbr[self.row_off[p] + k] as usize == q)
        else {
            return false;
        };
        self.remove_edge_at(p, k);
        true
    }

    /// Adds the overlay edge `p – q` (tracker wiring). Returns `false`
    /// without changes when the edge cannot be added: endpoints equal or
    /// absent, already neighbours, or either row at capacity.
    ///
    /// # Panics
    ///
    /// Panics if either slot is out of range.
    pub fn connect_peers(&mut self, p: PeerId, q: PeerId) -> bool {
        if p == q || !self.present[p] || !self.present[q] {
            return false;
        }
        if self.deg[p] as usize >= self.row_capacity(p)
            || self.deg[q] as usize >= self.row_capacity(q)
        {
            return false;
        }
        if self.neighbors(p).any(|v| v == q) {
            return false;
        }
        let e = self.row_off[p] + self.deg[p] as usize;
        let er = self.row_off[q] + self.deg[q] as usize;
        self.nbr[e] = q as u32;
        self.nbr[er] = p as u32;
        self.rev[e] = er as u32;
        self.rev[er] = e as u32;
        for slot in [e, er] {
            self.received_prev[slot] = 0.0;
            self.received_curr[slot] = 0.0;
            self.credit[slot] = 0.0;
        }
        self.deg[p] += 1;
        self.deg[q] += 1;
        true
    }

    /// Unlinks the edge at local slot `k` of `p`'s row: swap-removes both
    /// directions (moving the displaced edges' state along and re-pointing
    /// their reverse slots). The unchoke state (TFT set and optimistic
    /// slot) of both endpoints is dropped — it stores local row positions,
    /// which may have moved; the next rechoke rebuilds it.
    pub(crate) fn remove_edge_at(&mut self, p: PeerId, k: usize) {
        let e = self.row_off[p] + k;
        let q = self.nbr[e] as usize;
        let er = self.rev[e] as usize;
        // q side: move q's last live edge into `er`.
        let q_last = self.row_off[q] + self.deg[q] as usize - 1;
        if er != q_last {
            self.nbr[er] = self.nbr[q_last];
            self.rev[er] = self.rev[q_last];
            self.received_prev[er] = self.received_prev[q_last];
            self.received_curr[er] = self.received_curr[q_last];
            self.credit[er] = self.credit[q_last];
            let partner = self.rev[er] as usize;
            self.rev[partner] = er as u32;
        }
        self.clear_edge_slot(q_last);
        self.deg[q] -= 1;
        // p side: move p's last live edge into `e`. (The q-side move never
        // touches p's row: rows hold at most one edge per neighbour.)
        let p_last = self.row_off[p] + self.deg[p] as usize - 1;
        if e != p_last {
            self.nbr[e] = self.nbr[p_last];
            self.rev[e] = self.rev[p_last];
            self.received_prev[e] = self.received_prev[p_last];
            self.received_curr[e] = self.received_curr[p_last];
            self.credit[e] = self.credit[p_last];
            let partner = self.rev[e] as usize;
            self.rev[partner] = e as u32;
        }
        self.clear_edge_slot(p_last);
        self.deg[p] -= 1;
        self.tft_len[p] = 0;
        self.tft_len[q] = 0;
        self.optimistic[p] = NO_OPT;
        self.optimistic[q] = NO_OPT;
    }

    #[inline]
    fn clear_edge_slot(&mut self, e: usize) {
        self.nbr[e] = 0;
        self.rev[e] = 0;
        self.received_prev[e] = 0.0;
        self.received_curr[e] = 0.0;
        self.credit[e] = 0.0;
    }

    /// Checks the engine's structural invariants — reverse-edge symmetry,
    /// degree bounds, zeroed slack slots (no dangling credit or rate
    /// state beyond any live row), free-list consistency (departed slots
    /// exactly once on the free list, never live), availability counts
    /// and the population split against a from-scratch recount. Test
    /// support for the membership/fault proptests;
    /// `O(edges + peers · pieces)`.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn validate_consistency(&self) {
        let n = self.peer_count();
        let mut downloading = 0;
        let mut seeding = 0;
        let mut free_seen = vec![false; n];
        for &slot in &self.free {
            let p = slot as usize;
            assert!(p < n, "free-listed slot {p} out of range");
            assert!(!free_seen[p], "slot {p} free-listed twice");
            assert!(!self.present[p], "present peer {p} on the free list");
            free_seen[p] = true;
        }
        assert!(
            self.free.len() <= self.reuse_stack.len(),
            "free list outgrew the reuse stack"
        );
        assert!(self.live_bound <= n, "live bound past the arena");
        assert!(
            self.live_bound == 0 || self.present[self.live_bound - 1],
            "live bound is not tight"
        );
        assert!(
            (self.live_bound..n).all(|p| !self.present[p]),
            "present peer past the live bound"
        );
        // Present peers' stream ids are distinct logical identities.
        let mut streams: Vec<u32> = (0..n)
            .filter(|&p| self.present[p])
            .map(|p| self.stream_id[p])
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(
            streams.len(),
            self.present.iter().filter(|&&x| x).count(),
            "duplicate stream id among present peers"
        );
        assert!(
            self.stream_id
                .iter()
                .all(|&s| u64::from(s) < self.logical_len),
            "stream id past the logical arena length"
        );
        for p in 0..n {
            assert!(
                self.deg[p] as usize <= self.row_capacity(p),
                "peer {p} over capacity"
            );
            // Slack slots past the live degree must hold no stale edge or
            // transfer state: `clear_edge_slot` zeroes them on every
            // removal, so a crash can never leave dangling credit/rate.
            for e in self.row_off[p] + self.deg[p] as usize..self.row_off[p + 1] {
                assert!(
                    self.nbr[e] == 0
                        && self.rev[e] == 0
                        && self.received_prev[e] == 0.0
                        && self.received_curr[e] == 0.0
                        && self.credit[e] == 0.0,
                    "slack slot {e} of peer {p} holds stale edge state"
                );
            }
            if !self.present[p] {
                assert_eq!(self.deg[p], 0, "absent peer {p} keeps edges");
                assert!(free_seen[p], "absent slot {p} missing from the free list");
                continue;
            }
            if self.pieces[p].is_complete() {
                seeding += 1;
            } else {
                downloading += 1;
            }
            for e in self.row_off[p]..self.row_off[p] + self.deg[p] as usize {
                let q = self.nbr[e] as usize;
                assert!(self.present[q], "edge {p}–{q} points at an absent peer");
                let er = self.rev[e] as usize;
                assert!(
                    (self.row_off[q]..self.row_off[q] + self.deg[q] as usize).contains(&er),
                    "reverse slot of {p}->{q} outside {q}'s live row"
                );
                assert_eq!(self.nbr[er] as usize, p, "reverse slot mismatch");
                assert_eq!(self.rev[er] as usize, e, "reverse-of-reverse mismatch");
            }
        }
        assert_eq!(self.downloading_now, downloading, "downloading count");
        assert_eq!(self.seeding_now, seeding, "seeding count");
        for i in 0..self.config.piece_count {
            let holders = (0..n)
                .filter(|&p| self.present[p] && self.pieces[p].contains(i))
                .count() as u32;
            assert_eq!(holders, self.availability()[i], "availability of piece {i}");
        }
    }

    /// Runs [`Swarm::validate_consistency`] in debug builds and is a
    /// no-op in release builds — the hook the differential suites call
    /// after every churn/fault event, cheap enough to leave in hot loops.
    pub fn check_invariants(&self) {
        if cfg!(debug_assertions) {
            self.validate_consistency();
        }
    }

    // ------------------------------------------------------------------
    // Continuous-time hooks (driven by `crate::events`).
    //
    // The event engine owns its own per-edge rate/credit/window arrays
    // and the event clock; the swarm contributes the overlay arena, the
    // shared choke policy and the piece/availability/total bookkeeping.
    // None of the round-engine per-edge state (`received_*`, `credit`)
    // is touched through these hooks, so an event-driven swarm can still
    // be inspected with every public accessor.
    // ------------------------------------------------------------------

    /// Live piece availability index (the event engine snapshots it at
    /// rechoke-tick boundaries, mirroring `avail_prev` of the indexed
    /// round).
    pub(crate) fn avail_index(&self) -> &AvailIndex {
        &self.avail
    }

    /// Total edge-arena length (the event engine sizes its row-aligned
    /// per-edge arrays to this).
    pub(crate) fn edge_arena_len(&self) -> usize {
        self.nbr.len()
    }

    /// Live extent `[start, end)` of peer `p`'s overlay row.
    pub(crate) fn row_bounds(&self, p: PeerId) -> (usize, usize) {
        let b = self.row_off[p];
        (b, b + self.deg[p] as usize)
    }

    /// Neighbour pointed at by global edge slot `e`.
    pub(crate) fn edge_target(&self, e: usize) -> PeerId {
        self.nbr[e] as usize
    }

    /// Global slot of the reverse edge of `e`.
    pub(crate) fn edge_rev(&self, e: usize) -> usize {
        self.rev[e] as usize
    }

    /// Piece set of peer `p` (borrowed live, unlike [`Swarm::peer`]'s
    /// clone-free accessor this one is crate-internal and infallible).
    pub(crate) fn pieces_at(&self, p: PeerId) -> &PieceSet {
        &self.pieces[p]
    }

    /// One peer's rechoke under the event clock: runs the shared
    /// [`choke_policy`] with `window[e]` (global-slot-indexed receipts
    /// over the closing interval) as the rate signal, commits the unchoke
    /// arena, and fills `targets` with the interest-filtered transfer
    /// targets `(local slot, is_tft)` — exactly the flow-planning step of
    /// [`Swarm::par_rechoke_and_flows`], with the caller's RNG.
    pub(crate) fn event_rechoke(
        &mut self,
        p: PeerId,
        rng: &mut ChaCha8Rng,
        rotate_optimistic: bool,
        window: &[f64],
        targets: &mut Vec<(u32, bool)>,
    ) {
        targets.clear();
        if !self.uploads(p) {
            self.tft_len[p] = 0;
            self.optimistic[p] = NO_OPT;
            return;
        }
        let acts_seed = self.acts_as_seed(p);
        let mut scratch = std::mem::take(&mut self.scratch);
        let Swarm {
            ref config,
            ref row_off,
            ref deg,
            ref nbr,
            ref pieces,
            ref original_seed,
            ref mut tft_store,
            ref mut tft_len,
            ref mut optimistic,
            ..
        } = *self;
        let stride = config.tft_slots;
        let fluid = config.fluid_content;
        let base = row_off[p];
        let opt = choke_policy(
            &mut scratch,
            rng,
            deg[p] as usize,
            |k| interested_at(fluid, original_seed, pieces, nbr[base + k] as usize, p),
            |k| window[base + k],
            acts_seed,
            stride,
            config.optimistic_slots,
            rotate_optimistic,
            optimistic[p],
        );
        tft_len[p] = scratch.ranked.len() as u32;
        tft_store[p * stride..p * stride + scratch.ranked.len()].copy_from_slice(&scratch.ranked);
        optimistic[p] = opt;
        for &k in &scratch.ranked {
            targets.push((k, true));
        }
        if opt != NO_OPT && !targets.iter().any(|&(k, _)| k == opt) {
            targets.push((opt, false));
        }
        targets.retain(|&(k, _)| {
            interested_at(
                fluid,
                original_seed,
                pieces,
                nbr[base + k as usize] as usize,
                p,
            )
        });
        self.scratch = scratch;
    }

    /// Deposits settled upload credit on the sender side (the event-clock
    /// analogue of the pass-1 `up_c[li] += share` accounting).
    pub(crate) fn event_deposit_up(&mut self, p: PeerId, kbit: f64, is_tft: bool) {
        self.total_up[p] += kbit;
        if is_tft {
            self.tft_up[p] += kbit;
        }
    }

    /// Deposits settled download credit on the recipient side — one add
    /// per edge per tick in ascending slot order, reproducing the
    /// recipient-major delivery's accumulation order bit-for-bit in the
    /// synchronous limit.
    pub(crate) fn event_deposit_down(&mut self, q: PeerId, kbit: f64, tft_kbit: f64) {
        self.total_down[q] += kbit;
        if tft_kbit != 0.0 {
            self.tft_down[q] += tft_kbit;
        }
    }

    /// Rarest-first pick prefetch against the event engine's availability
    /// snapshot: fills `picks` with up to `want` pieces `sender_snapshot`
    /// holds and recipient `q` (live) lacks.
    pub(crate) fn event_batch_picks(
        &self,
        snapshot: &AvailIndex,
        q: PeerId,
        sender_snapshot: &PieceSet,
        want: usize,
        picks: &mut Vec<u64>,
    ) {
        snapshot.batch_picks(&self.pieces[q], sender_snapshot, want, picks);
    }

    /// Lands one converted piece on `q` at event time: inserts it, bumps
    /// live availability, and on completion stamps `completion_round`
    /// (the event time in rechoke-interval units) into the completion
    /// bookkeeping. Returns whether this landing completed the download.
    pub(crate) fn event_convert_piece(
        &mut self,
        q: PeerId,
        piece: usize,
        completion_round: u64,
    ) -> bool {
        self.pieces[q].insert(piece);
        self.avail.increment(piece);
        if self.pieces[q].is_complete() && self.completed_round[q].is_none() {
            self.completed_round[q] = Some(completion_round);
            self.completed_total += 1;
            self.downloading_now -= 1;
            self.seeding_now += 1;
            true
        } else {
            false
        }
    }
}

/// Piece-mode interest with `O(1)` completion fast paths (see
/// [`Swarm::interested`]); semantics identical to
/// `q.is_interested_in(p)`.
#[inline]
fn interested_pieces(q: &PieceSet, p: &PieceSet) -> bool {
    if q.is_complete() {
        return false;
    }
    if p.is_complete() {
        return true;
    }
    q.is_interested_in(p)
}

/// The engine's interest predicate over raw state (fluid shortcut or
/// piece-mode fast paths) — the single definition every rechoke/flow
/// closure and [`Swarm::interested`] share, so the predicate cannot drift
/// between the serial and parallel semantics.
#[inline]
pub(crate) fn interested_at(
    fluid: bool,
    original_seed: &[bool],
    pieces: &[PieceSet],
    q: usize,
    p: usize,
) -> bool {
    if fluid {
        q != p && !original_seed[q]
    } else {
        interested_pieces(&pieces[q], &pieces[p])
    }
}

/// [`Swarm::uploads`] over raw state — shared with the parallel rechoke
/// workers, which evaluate it chunk-locally instead of reading a
/// serially-precomputed flag array.
#[inline]
fn uploads_at(
    config: &SwarmConfig,
    present: &[bool],
    behavior: &[PeerBehavior],
    pieces: &[PieceSet],
    original_seed: &[bool],
    p: usize,
) -> bool {
    if !present[p] || !behavior[p].uploads() {
        return false;
    }
    if !config.fluid_content && pieces[p].is_complete() && !original_seed[p] {
        config.seed_after_completion
    } else {
        true
    }
}

/// [`Swarm::acts_as_seed`] over raw state (see [`uploads_at`]).
#[inline]
fn acts_seed_at(
    config: &SwarmConfig,
    behavior: &[PeerBehavior],
    pieces: &[PieceSet],
    original_seed: &[bool],
    p: usize,
) -> bool {
    if behavior[p].ignores_reciprocation() {
        return true;
    }
    if config.fluid_content {
        original_seed[p]
    } else {
        pieces[p].is_complete()
    }
}

/// One peer's complete choking decision — candidate filter, seed shuffle
/// or TFT top-k, optimistic validity check and rotation. Fills
/// `scratch.cand` (interested neighbour positions) and `scratch.ranked`
/// (the TFT unchoke set, ranked) and returns the optimistic position (or
/// [`NO_OPT`]). `interested` and `rate` take local neighbour positions.
///
/// Shared verbatim by the serial round and the parallel rechoke pass (the
/// only difference between the two is which RNG arrives here), so the
/// policy cannot drift between the two semantics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn choke_policy(
    scratch: &mut Scratch,
    rng: &mut ChaCha8Rng,
    deg: usize,
    interested: impl Fn(usize) -> bool,
    rate: impl Fn(usize) -> f64,
    acts_seed: bool,
    tft_slots: usize,
    optimistic_slots: usize,
    rotate_optimistic: bool,
    prev_optimistic: u32,
) -> u32 {
    // Interested candidate neighbour positions.
    scratch.cand.clear();
    for k in 0..deg {
        if interested(k) {
            scratch.cand.push(k as u32);
        }
    }
    scratch.ranked.clear();
    scratch.ranked.extend_from_slice(&scratch.cand);
    if acts_seed {
        // Seeds have no reciprocation signal: random rotation (same
        // Fisher–Yates draws as the reference shuffle).
        scratch.ranked.shuffle(rng);
        scratch.ranked.truncate(tft_slots);
    } else {
        // Tit-for-Tat: top receivers from the last round. The index
        // tie-break makes the order strict, so top-k selection reproduces
        // the reference stable-sort-then-truncate without sorting the
        // tail.
        rank_top_k(&mut scratch.ranked, tft_slots, |&a, &b| {
            rate(b as usize)
                .total_cmp(&rate(a as usize))
                .then(a.cmp(&b))
        });
    }

    // Optimistic slot: rotate periodically among interested,
    // non-TFT-unchoked neighbours; drop it if no longer interested.
    let mut optimistic = prev_optimistic;
    if optimistic != NO_OPT {
        let still_valid =
            scratch.cand.contains(&optimistic) && !scratch.ranked.contains(&optimistic);
        if !still_valid {
            optimistic = NO_OPT;
        }
    }
    if optimistic_slots > 0 && (rotate_optimistic || optimistic == NO_OPT) {
        scratch.pool.clear();
        scratch.pool.extend(
            scratch
                .cand
                .iter()
                .copied()
                .filter(|k| !scratch.ranked.contains(k)),
        );
        optimistic = if scratch.pool.is_empty() {
            NO_OPT
        } else {
            scratch.pool[rng.gen_range(0..scratch.pool.len())]
        };
    }
    optimistic
}

/// Selects the top `k` of `ranked` under `cmp` in sorted order — the exact
/// result of a full stable sort followed by `truncate(k)`, because `cmp`
/// is a strict total order (rate descending, index ascending).
fn rank_top_k(
    ranked: &mut Vec<u32>,
    k: usize,
    mut cmp: impl FnMut(&u32, &u32) -> std::cmp::Ordering,
) {
    if k == 0 {
        ranked.clear();
        return;
    }
    if ranked.len() > k {
        ranked.select_nth_unstable_by(k - 1, &mut cmp);
        ranked.truncate(k);
    }
    ranked.sort_unstable_by(cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_uploads(n: usize, kbps: f64) -> Vec<f64> {
        vec![kbps; n]
    }

    fn small_config(leechers: usize, seeds: usize) -> SwarmConfig {
        SwarmConfig::builder()
            .leechers(leechers)
            .seeds(seeds)
            .piece_count(64)
            .piece_size_kbit(400.0)
            .seed(42)
            .build()
    }

    #[test]
    fn construction_shapes() {
        let cfg = small_config(20, 2);
        let swarm = Swarm::new(cfg, &uniform_uploads(22, 500.0));
        assert_eq!(swarm.peer_count(), 22);
        // Seeds are the last indices and complete.
        assert!(swarm.peer(20).is_original_seed());
        assert!(swarm.peer(21).pieces().is_complete());
        assert!(!swarm.peer(0).is_original_seed());
        // Availability counts all holders.
        assert!(swarm.availability().iter().all(|&a| a >= 2));
        swarm.validate_consistency();
    }

    #[test]
    fn reverse_edges_are_consistent() {
        let cfg = small_config(25, 1);
        let swarm = Swarm::new(cfg, &uniform_uploads(26, 500.0));
        for p in 0..26 {
            for e in swarm.row_off[p]..swarm.row_off[p] + swarm.deg[p] as usize {
                let q = swarm.nbr[e] as usize;
                let er = swarm.rev[e] as usize;
                assert!((swarm.row_off[q]..swarm.row_off[q] + swarm.deg[q] as usize).contains(&er));
                assert_eq!(swarm.nbr[er] as usize, p);
                assert_eq!(swarm.rev[er] as usize, e);
            }
        }
    }

    #[test]
    fn conservation_of_traffic() {
        let cfg = small_config(25, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(26, 400.0));
        swarm.run_rounds(30);
        let up: f64 = (0..26).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..26).map(|p| swarm.peer(p).total_downloaded()).sum();
        assert!(up > 0.0);
        assert!((up - down).abs() < 1e-6, "up {up} vs down {down}");
    }

    #[test]
    fn pieces_only_increase_and_availability_consistent() {
        let cfg = small_config(15, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(16, 600.0));
        let mut prev: Vec<usize> = (0..16).map(|p| swarm.peer(p).pieces().count()).collect();
        for _ in 0..25 {
            swarm.round();
            for p in 0..16 {
                let now = swarm.peer(p).pieces().count();
                assert!(now >= prev[p], "peer {p} lost pieces");
                prev[p] = now;
            }
            // Recount availability from scratch.
            for i in 0..swarm.config().piece_count {
                let holders = (0..16)
                    .filter(|&p| swarm.peer(p).pieces().contains(i))
                    .count() as u32;
                assert_eq!(holders, swarm.availability()[i], "piece {i}");
            }
        }
    }

    #[test]
    fn seeds_never_download() {
        let cfg = small_config(12, 2);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(14, 500.0));
        swarm.run_rounds(20);
        for p in 12..14 {
            assert_eq!(swarm.peer(p).total_downloaded(), 0.0);
            assert!(swarm.peer(p).total_uploaded() > 0.0);
        }
    }

    #[test]
    fn swarm_completes_with_enough_rounds() {
        let cfg = SwarmConfig::builder()
            .leechers(10)
            .seeds(1)
            .piece_count(32)
            .piece_size_kbit(100.0)
            .initial_completion(0.5)
            .seed(3)
            .build();
        let mut swarm = Swarm::new(cfg, &uniform_uploads(11, 1000.0));
        for _ in 0..400 {
            swarm.round();
            if swarm.completed_count() == 10 {
                break;
            }
        }
        assert_eq!(swarm.completed_count(), 10, "swarm failed to complete");
        // Completion rounds recorded and within the horizon.
        for p in 0..10 {
            assert!(swarm.peer(p).completed_round().is_some());
        }
        // The incrementally tracked population agrees: everyone seeds now.
        assert_eq!(swarm.population().downloading, 0);
        assert_eq!(swarm.population().seeding, 11);
        assert_eq!(swarm.completed(), 10);
    }

    #[test]
    fn upload_capacity_respected_per_round() {
        let cfg = small_config(20, 1);
        let uploads = uniform_uploads(21, 300.0);
        let mut swarm = Swarm::new(cfg, &uploads);
        for _ in 0..10 {
            let before: Vec<f64> = (0..21).map(|p| swarm.peer(p).total_uploaded()).collect();
            swarm.round();
            for p in 0..21 {
                let sent = swarm.peer(p).total_uploaded() - before[p];
                let cap = uploads[p] * swarm.config().round_seconds;
                assert!(sent <= cap + 1e-9, "peer {p} sent {sent} above cap {cap}");
            }
        }
    }

    #[test]
    fn unchoke_counts_bounded_by_slots() {
        let cfg = small_config(30, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(31, 500.0));
        for _ in 0..15 {
            swarm.round();
            for p in 0..31 {
                assert!(swarm.tft_unchoked(p).len() <= swarm.config().tft_slots);
                // Optimistic target is never also a TFT target.
                if let Some(o) = swarm.optimistic_unchoked(p) {
                    assert!(!swarm.tft_unchoked(p).contains(&o));
                }
            }
        }
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let mk = || {
            let cfg = small_config(18, 1);
            let mut swarm = Swarm::new(cfg, &uniform_uploads(19, 450.0));
            swarm.run_rounds(12);
            (0..19)
                .map(|p| swarm.peer(p).total_downloaded())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn parallel_rounds_identical_for_any_thread_count() {
        // The strat-par determinism contract, at the engine level: the
        // indexed semantics must not depend on the worker count.
        for fluid in [false, true] {
            let mk = |threads: usize| {
                let mut cfg = small_config(23, 2);
                cfg.fluid_content = fluid;
                let uploads: Vec<f64> = (0..25).map(|i| 150.0 + 30.0 * i as f64).collect();
                let mut swarm = Swarm::new(cfg, &uploads);
                swarm.run_rounds_parallel(17, threads);
                let state: Vec<(f64, f64, f64, f64, usize)> = (0..25)
                    .map(|p| {
                        (
                            swarm.peer(p).total_uploaded(),
                            swarm.peer(p).total_downloaded(),
                            swarm.peer(p).tft_uploaded(),
                            swarm.peer(p).tft_downloaded(),
                            swarm.peer(p).pieces().count(),
                        )
                    })
                    .collect();
                (state, swarm.availability().to_vec())
            };
            let baseline = mk(1);
            for threads in [2, 3, 8, 64] {
                assert_eq!(
                    mk(threads),
                    baseline,
                    "threads = {threads}, fluid = {fluid}"
                );
            }
        }
    }

    #[test]
    fn parallel_rounds_conserve_traffic() {
        let cfg = small_config(20, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(21, 400.0));
        swarm.run_rounds_parallel(25, 4);
        let up: f64 = (0..21).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..21).map(|p| swarm.peer(p).total_downloaded()).sum();
        assert!(up > 0.0);
        assert!((up - down).abs() < 1e-6, "up {up} vs down {down}");
        // Availability stays consistent with the piece sets.
        for i in 0..swarm.config().piece_count {
            let holders = (0..21)
                .filter(|&p| swarm.peer(p).pieces().contains(i))
                .count() as u32;
            assert_eq!(holders, swarm.availability()[i], "piece {i}");
        }
        swarm.validate_consistency();
    }

    #[test]
    fn completed_leechers_keep_seeding_when_configured() {
        let cfg = SwarmConfig::builder()
            .leechers(8)
            .seeds(1)
            .piece_count(16)
            .piece_size_kbit(50.0)
            .initial_completion(0.8)
            .seed_after_completion(true)
            .seed(5)
            .build();
        let mut swarm = Swarm::new(cfg, &uniform_uploads(9, 2000.0));
        swarm.run_rounds(100);
        assert_eq!(swarm.completed_count(), 8);
        // Completed leechers continued to upload after completing.
        let up: f64 = (0..8).map(|p| swarm.peer(p).total_uploaded()).sum();
        assert!(up > 0.0);
    }

    #[test]
    #[should_panic(expected = "one upload capacity per peer")]
    fn wrong_capacity_count_panics() {
        let cfg = small_config(5, 1);
        let _ = Swarm::new(cfg, &uniform_uploads(3, 100.0));
    }

    #[test]
    #[should_panic(expected = "one behavior per peer")]
    fn wrong_behavior_count_panics() {
        let cfg = small_config(5, 1);
        let _ = Swarm::with_behaviors(
            cfg,
            &uniform_uploads(6, 100.0),
            &[PeerBehavior::Compliant; 2],
        );
    }

    #[test]
    fn all_compliant_behaviors_match_default_constructor() {
        let mk = |explicit: bool| {
            let cfg = small_config(18, 1);
            let uploads = uniform_uploads(19, 450.0);
            let mut swarm = if explicit {
                Swarm::with_behaviors(cfg, &uploads, &[PeerBehavior::Compliant; 19])
            } else {
                Swarm::new(cfg, &uploads)
            };
            swarm.run_rounds(12);
            (0..19)
                .map(|p| swarm.peer(p).total_downloaded())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn free_riders_upload_nothing_but_still_download() {
        let mut cfg = small_config(20, 2);
        cfg.fluid_content = true;
        // Heterogeneous capacities so TFT ranks carry signal; free riders
        // occupy the last leecher indices (the scenario layer's convention).
        let uploads: Vec<f64> = (0..22).map(|i| 300.0 + 40.0 * i as f64).collect();
        let mut behaviors = vec![PeerBehavior::Compliant; 22];
        behaviors[18] = PeerBehavior::FreeRider;
        behaviors[19] = PeerBehavior::FreeRider;
        let mut swarm = Swarm::with_behaviors(cfg, &uploads, &behaviors);
        swarm.run_rounds(40);
        for p in [18, 19] {
            assert_eq!(
                swarm.peer(p).total_uploaded(),
                0.0,
                "free rider {p} uploaded"
            );
            // Optimistic slots still feed them.
            assert!(swarm.peer(p).total_downloaded() > 0.0);
            assert!(swarm.tft_unchoked(p).is_empty());
            assert!(swarm.optimistic_unchoked(p).is_none());
        }
        // Free riders live off the optimistic economy alone: they download
        // strictly less than the median compliant leecher.
        let mut compliant: Vec<f64> = (0..18).map(|p| swarm.peer(p).total_downloaded()).collect();
        compliant.sort_by(f64::total_cmp);
        let median = compliant[compliant.len() / 2];
        for p in [18, 19] {
            assert!(
                swarm.peer(p).total_downloaded() < median,
                "free rider {p} outperformed the median compliant peer"
            );
        }
    }

    #[test]
    fn altruists_upload_without_reciprocation_signal() {
        let mut cfg = small_config(20, 1);
        cfg.fluid_content = true;
        let mut behaviors = vec![PeerBehavior::Compliant; 21];
        behaviors[3] = PeerBehavior::Altruistic;
        let mut swarm = Swarm::with_behaviors(cfg, &uniform_uploads(21, 500.0), &behaviors);
        swarm.run_rounds(30);
        assert_eq!(swarm.peer(3).behavior(), PeerBehavior::Altruistic);
        // Altruists keep uploading and (being leechers) keep downloading.
        assert!(swarm.peer(3).total_uploaded() > 0.0);
        assert!(swarm.peer(3).total_downloaded() > 0.0);
    }

    #[test]
    fn slack_preserves_rounds_bit_for_bit() {
        // Re-laying out the arena with spare row capacity must not change
        // behaviour: identical seeds and rounds, identical state.
        let run = |slack: usize| {
            let cfg = small_config(20, 2);
            let uploads: Vec<f64> = (0..22).map(|i| 150.0 + 25.0 * i as f64).collect();
            let mut swarm = Swarm::new(cfg, &uploads);
            swarm.reserve_overlay_slack(slack);
            swarm.run_rounds(15);
            (0..22)
                .map(|p| {
                    (
                        swarm.peer(p).total_downloaded(),
                        swarm.peer(p).pieces().count(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(7));
    }

    #[test]
    fn slack_preserves_parallel_rounds_bit_for_bit() {
        let run = |slack: usize| {
            let cfg = small_config(19, 2);
            let uploads: Vec<f64> = (0..21).map(|i| 150.0 + 25.0 * i as f64).collect();
            let mut swarm = Swarm::new(cfg, &uploads);
            swarm.reserve_overlay_slack(slack);
            swarm.run_rounds_parallel(9, 3);
            swarm.run_rounds_parallel(6, 3);
            (0..21)
                .map(|p| {
                    (
                        swarm.peer(p).total_downloaded(),
                        swarm.peer(p).pieces().count(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(5));
    }

    #[test]
    fn depart_then_arrive_reuses_slot_and_keeps_invariants() {
        let cfg = small_config(14, 2);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(16, 500.0));
        swarm.reserve_overlay_slack(6);
        swarm.run_rounds(4);
        let before_pop = swarm.population();
        let departed_complete = swarm.peer(5).pieces().is_complete();
        swarm.depart(5);
        assert!(!swarm.is_present(5));
        assert_eq!(swarm.degree(5), 0);
        swarm.validate_consistency();
        let mid_pop = swarm.population();
        assert_eq!(mid_pop.total() + 1, before_pop.total());
        let _ = departed_complete;

        // The freed slot is reused by the next arrival.
        let slot = swarm.arrive(700.0, PeerBehavior::Compliant, PieceSet::new(64));
        assert_eq!(slot, 5);
        assert!(swarm.is_present(5));
        assert_eq!(swarm.peer(5).upload_kbps(), 700.0);
        assert_eq!(swarm.peer(5).total_downloaded(), 0.0);
        // Wire it to a few present peers and keep simulating.
        for q in [0usize, 1, 2] {
            assert!(swarm.connect_peers(slot, q));
        }
        assert_eq!(swarm.degree(slot), 3);
        swarm.validate_consistency();
        swarm.run_rounds(6);
        swarm.validate_consistency();
        assert!(swarm.peer(slot).total_downloaded() > 0.0);
    }

    #[test]
    fn depart_drops_stale_unchoke_state_of_survivors() {
        // TFT sets store local row positions; a swap-removing departure
        // invalidates them, so the survivors' unchoke state must be
        // cleared rather than left pointing at reshuffled slots.
        let cfg = small_config(16, 2);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(18, 500.0));
        swarm.reserve_overlay_slack(4);
        swarm.run_rounds(6); // populate TFT sets and optimistic slots
        let victim = 3;
        let neighbors: Vec<PeerId> = swarm.neighbors(victim).collect();
        swarm.depart(victim);
        for &q in &neighbors {
            assert!(swarm.tft_unchoked(q).is_empty(), "stale TFT set on {q}");
            assert!(swarm.optimistic_unchoked(q).is_none());
        }
        // Every remaining unchoke reference across the swarm is a live
        // neighbor.
        for p in 0..swarm.peer_count() {
            if !swarm.is_present(p) {
                continue;
            }
            let nbrs: Vec<PeerId> = swarm.neighbors(p).collect();
            for t in swarm.tft_unchoked(p) {
                assert!(nbrs.contains(&t), "peer {p} TFT-unchokes non-neighbor {t}");
            }
        }
        swarm.run_rounds(4); // and the engine keeps simulating cleanly
        swarm.validate_consistency();
    }

    #[test]
    fn arrival_growth_appends_fresh_slots() {
        let cfg = small_config(6, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(7, 500.0));
        swarm.reserve_overlay_slack(4);
        let n0 = swarm.peer_count();
        let p = swarm.arrive(333.0, PeerBehavior::Compliant, PieceSet::new(64));
        assert_eq!(p, n0);
        assert_eq!(swarm.peer_count(), n0 + 1);
        assert!(swarm.row_capacity(p) >= 4);
        assert!(swarm.connect_peers(p, 0));
        swarm.validate_consistency();
        // A complete arrival is an original seed and counts as seeding.
        let seeds_before = swarm.population().seeding;
        let s = swarm.arrive(900.0, PeerBehavior::Compliant, PieceSet::full(64));
        assert!(swarm.peer(s).is_original_seed());
        assert_eq!(swarm.population().seeding, seeds_before + 1);
        swarm.validate_consistency();
    }

    #[test]
    fn connect_rejects_duplicates_and_full_rows() {
        let cfg = small_config(6, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(7, 500.0));
        // No slack: every initial row is exactly full.
        let p = 0;
        if swarm.degree(p) > 0 {
            let q = swarm.neighbors(p).next().unwrap();
            assert!(!swarm.connect_peers(p, q), "duplicate edge accepted");
        }
        assert!(!swarm.connect_peers(p, p), "self edge accepted");
    }

    #[test]
    #[should_panic(expected = "is not present")]
    fn double_depart_panics() {
        let cfg = small_config(6, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(7, 500.0));
        swarm.depart(2);
        swarm.depart(2);
    }
}
