//! The round-based swarm simulator.
//!
//! One round models one rechoke period (10 s). Each round every peer:
//!
//! 1. **rechokes**: ranks its overlay neighbours by the download rate
//!    received from them during the previous round and unchokes the top
//!    `tft_slots` interested ones (Tit-for-Tat); every `optimistic_period`
//!    rounds it also rotates one *optimistic* unchoke to a random interested
//!    choked neighbour — the paper's "generous connection" that powers the
//!    random-initiative discovery of better partners (§6);
//! 2. **transfers**: its upload capacity is split equally among unchoked
//!    interested neighbours; received credit converts into pieces selected
//!    **rarest-first** among the pieces the sender holds.
//!
//! Seeds (and completed leechers, §6 post-flash-crowd) unchoke interested
//! neighbours uniformly at random, rotating every round.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use strat_graph::{generators, NodeId};

use crate::{PeerBehavior, PieceSet, SwarmConfig};

/// Index of a peer inside a [`Swarm`].
pub type PeerId = usize;

/// Per-peer simulation state.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Upload capacity in kbps.
    upload_kbps: f64,
    /// Choking behavior.
    behavior: PeerBehavior,
    /// Pieces currently held.
    pieces: PieceSet,
    /// Whether this peer started as a seed.
    original_seed: bool,
    /// Round at which the file completed (leechers only).
    completed_round: Option<u64>,
    /// kbit received from each neighbour during the previous round.
    received_prev: Vec<f64>,
    /// kbit received from each neighbour during the current round.
    received_curr: Vec<f64>,
    /// Download credit (kbit) accumulated towards the next piece, per
    /// neighbour.
    credit: Vec<f64>,
    /// Neighbour positions currently TFT-unchoked.
    tft_unchoked: Vec<usize>,
    /// Neighbour position currently optimistically unchoked.
    optimistic: Option<usize>,
    /// Cumulative kbit uploaded / downloaded.
    total_up: f64,
    total_down: f64,
    /// Cumulative kbit uploaded / downloaded on reciprocation (TFT) slots.
    tft_up: f64,
    tft_down: f64,
}

impl Peer {
    /// Upload capacity in kbps.
    #[must_use]
    pub fn upload_kbps(&self) -> f64 {
        self.upload_kbps
    }

    /// The peer's choking behavior.
    #[must_use]
    pub fn behavior(&self) -> PeerBehavior {
        self.behavior
    }

    /// The pieces currently held.
    #[must_use]
    pub fn pieces(&self) -> &PieceSet {
        &self.pieces
    }

    /// Whether this peer started as a seed.
    #[must_use]
    pub fn is_original_seed(&self) -> bool {
        self.original_seed
    }

    /// Whether the peer currently holds every piece.
    #[must_use]
    pub fn is_seeding(&self) -> bool {
        self.pieces.is_complete()
    }

    /// Round at which a leecher completed the file.
    #[must_use]
    pub fn completed_round(&self) -> Option<u64> {
        self.completed_round
    }

    /// Cumulative kilobits uploaded.
    #[must_use]
    pub fn total_uploaded(&self) -> f64 {
        self.total_up
    }

    /// Cumulative kilobits downloaded.
    #[must_use]
    pub fn total_downloaded(&self) -> f64 {
        self.total_down
    }

    /// Share ratio `downloaded / uploaded`; `None` when nothing was
    /// uploaded yet.
    #[must_use]
    pub fn share_ratio(&self) -> Option<f64> {
        (self.total_up > 0.0).then(|| self.total_down / self.total_up)
    }

    /// Kilobits uploaded through TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_uploaded(&self) -> f64 {
        self.tft_up
    }

    /// Kilobits received from senders' TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_downloaded(&self) -> f64 {
        self.tft_down
    }

    /// Share ratio of the **TFT economy only** — the quantity the paper's
    /// Figure 11 models (optimistic-slot windfalls excluded); `None` when
    /// nothing was TFT-uploaded yet.
    #[must_use]
    pub fn tft_share_ratio(&self) -> Option<f64> {
        (self.tft_up > 0.0).then(|| self.tft_down / self.tft_up)
    }
}

/// A BitTorrent swarm under Tit-for-Tat choking.
///
/// # Examples
///
/// ```
/// use strat_bittorrent::{Swarm, SwarmConfig};
///
/// let config = SwarmConfig::builder().leechers(30).seeds(1).piece_count(32).build();
/// let uploads: Vec<f64> = (0..31).map(|i| 100.0 + 10.0 * i as f64).collect();
/// let mut swarm = Swarm::new(config, &uploads);
/// for _ in 0..20 {
///     swarm.round();
/// }
/// // Transfers happened and conservation holds.
/// let up: f64 = (0..swarm.peer_count()).map(|p| swarm.peer(p).total_uploaded()).sum();
/// let down: f64 = (0..swarm.peer_count()).map(|p| swarm.peer(p).total_downloaded()).sum();
/// assert!(up > 0.0 && (up - down).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Swarm {
    config: SwarmConfig,
    rng: ChaCha8Rng,
    /// Overlay adjacency: `neighbors[p]` lists the peers `p` knows.
    neighbors: Vec<Vec<PeerId>>,
    peers: Vec<Peer>,
    /// Global piece availability (holder counts), kept incrementally.
    availability: Vec<u32>,
    round: u64,
}

impl Swarm {
    /// Builds a swarm: `leechers + seeds` peers, random overlay of expected
    /// degree `mean_neighbors`, post-flash-crowd piece initialization.
    ///
    /// `upload_kbps[p]` gives each peer's upload capacity; seeds occupy the
    /// **last** `seeds` indices.
    ///
    /// # Panics
    ///
    /// Panics if `upload_kbps.len() != leechers + seeds` or any capacity is
    /// non-positive.
    #[must_use]
    pub fn new(config: SwarmConfig, upload_kbps: &[f64]) -> Self {
        let behaviors = vec![PeerBehavior::Compliant; config.leechers + config.seeds];
        Self::with_behaviors(config, upload_kbps, &behaviors)
    }

    /// Builds a swarm with an explicit per-peer [`PeerBehavior`] mix (see
    /// the `behavior` module docs). [`Swarm::new`] is the all-compliant
    /// special case and behaves identically to it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Swarm::new`], or if
    /// `behaviors.len()` disagrees with the peer count.
    #[must_use]
    pub fn with_behaviors(
        config: SwarmConfig,
        upload_kbps: &[f64],
        behaviors: &[PeerBehavior],
    ) -> Self {
        let n = config.leechers + config.seeds;
        assert_eq!(upload_kbps.len(), n, "need one upload capacity per peer");
        assert_eq!(behaviors.len(), n, "need one behavior per peer");
        assert!(
            upload_kbps.iter().all(|&u| u.is_finite() && u > 0.0),
            "upload capacities must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Tracker overlay: Erdős–Rényi with the requested expected degree.
        let overlay = generators::erdos_renyi_mean_degree(n, config.mean_neighbors, &mut rng);
        let neighbors: Vec<Vec<PeerId>> = (0..n)
            .map(|p| {
                overlay
                    .neighbors(NodeId::new(p))
                    .iter()
                    .map(|v| v.index())
                    .collect()
            })
            .collect();

        let mut peers: Vec<Peer> = (0..n)
            .map(|p| {
                let is_seed = p >= config.leechers;
                let pieces = if is_seed {
                    PieceSet::full(config.piece_count)
                } else {
                    let mut set = PieceSet::new(config.piece_count);
                    for i in 0..config.piece_count {
                        if rng.gen_bool(config.initial_completion) {
                            set.insert(i);
                        }
                    }
                    set
                };
                let deg = neighbors[p].len();
                Peer {
                    upload_kbps: upload_kbps[p],
                    behavior: behaviors[p],
                    pieces,
                    original_seed: is_seed,
                    completed_round: None,
                    received_prev: vec![0.0; deg],
                    received_curr: vec![0.0; deg],
                    credit: vec![0.0; deg],
                    tft_unchoked: Vec::new(),
                    optimistic: None,
                    total_up: 0.0,
                    total_down: 0.0,
                    tft_up: 0.0,
                    tft_down: 0.0,
                }
            })
            .collect();
        // A leecher may complete by lucky initialization.
        for peer in &mut peers {
            if !peer.original_seed && peer.pieces.is_complete() {
                peer.completed_round = Some(0);
            }
        }

        let mut availability = vec![0u32; config.piece_count];
        for peer in &peers {
            for (i, a) in availability.iter_mut().enumerate() {
                *a += u32::from(peer.pieces.contains(i));
            }
        }
        Self {
            config,
            rng,
            neighbors,
            peers,
            availability,
            round: 0,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// Number of peers.
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Read access to peer `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn peer(&self, p: PeerId) -> &Peer {
        &self.peers[p]
    }

    /// Overlay neighbours of `p`.
    #[must_use]
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        &self.neighbors[p]
    }

    /// Rounds simulated so far.
    #[must_use]
    pub fn round_count(&self) -> u64 {
        self.round
    }

    /// Global availability (holder count) per piece.
    #[must_use]
    pub fn availability(&self) -> &[u32] {
        &self.availability
    }

    /// Number of leechers that hold the complete file.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| !p.original_seed && p.completed_round.is_some())
            .count()
    }

    /// The peers `p` is currently TFT-unchoking.
    #[must_use]
    pub fn tft_unchoked(&self, p: PeerId) -> Vec<PeerId> {
        self.peers[p]
            .tft_unchoked
            .iter()
            .map(|&k| self.neighbors[p][k])
            .collect()
    }

    /// The peer `p` is currently optimistically unchoking, if any.
    #[must_use]
    pub fn optimistic_unchoked(&self, p: PeerId) -> Option<PeerId> {
        self.peers[p].optimistic.map(|k| self.neighbors[p][k])
    }

    /// Simulates one round (rechoke, then transfer).
    pub fn round(&mut self) {
        self.rechoke();
        self.transfer();
        self.round += 1;
        for peer in &mut self.peers {
            core::mem::swap(&mut peer.received_prev, &mut peer.received_curr);
            peer.received_curr.iter_mut().for_each(|r| *r = 0.0);
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Whether `q` is interested in `p`'s content.
    ///
    /// Fluid mode: leechers are always interested (content never
    /// bottlenecks, §6); seeds are interested in nobody.
    fn interested(&self, q: PeerId, p: PeerId) -> bool {
        if self.config.fluid_content {
            return q != p && !self.peers[q].original_seed;
        }
        self.peers[q].pieces.is_interested_in(&self.peers[p].pieces)
    }

    /// Whether `p` rechokes like a seed (no reciprocation signal).
    fn acts_as_seed(&self, p: PeerId) -> bool {
        if self.peers[p].behavior.ignores_reciprocation() {
            return true;
        }
        if self.config.fluid_content {
            self.peers[p].original_seed
        } else {
            self.peers[p].is_seeding()
        }
    }

    /// Whether `p` currently uploads at all.
    fn uploads(&self, p: PeerId) -> bool {
        let peer = &self.peers[p];
        if !peer.behavior.uploads() {
            return false;
        }
        if !self.config.fluid_content && peer.pieces.is_complete() && !peer.original_seed {
            self.config.seed_after_completion
        } else {
            true
        }
    }

    fn rechoke(&mut self) {
        let n = self.peers.len();
        let rotate_optimistic = self
            .round
            .is_multiple_of(u64::from(self.config.optimistic_period));
        for p in 0..n {
            if !self.uploads(p) {
                self.peers[p].tft_unchoked.clear();
                self.peers[p].optimistic = None;
                continue;
            }
            // Interested candidate neighbour positions.
            let candidates: Vec<usize> = (0..self.neighbors[p].len())
                .filter(|&k| self.interested(self.neighbors[p][k], p))
                .collect();

            let tft: Vec<usize> = if self.acts_as_seed(p) {
                // Seeds have no reciprocation signal: random rotation.
                let mut cands = candidates.clone();
                cands.shuffle(&mut self.rng);
                cands.truncate(self.config.tft_slots);
                cands
            } else {
                // Tit-for-Tat: top receivers from the last round.
                let mut ranked = candidates.clone();
                ranked.sort_by(|&a, &b| {
                    self.peers[p].received_prev[b].total_cmp(&self.peers[p].received_prev[a])
                });
                ranked.truncate(self.config.tft_slots);
                ranked
            };

            // Optimistic slot: rotate periodically among interested,
            // non-TFT-unchoked neighbours; drop it if no longer interested.
            let mut optimistic = self.peers[p].optimistic;
            if let Some(k) = optimistic {
                let still_valid = candidates.contains(&k) && !tft.contains(&k);
                if !still_valid {
                    optimistic = None;
                }
            }
            if self.config.optimistic_slots > 0 && (rotate_optimistic || optimistic.is_none()) {
                let pool: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|k| !tft.contains(k))
                    .collect();
                optimistic = if pool.is_empty() {
                    None
                } else {
                    Some(pool[self.rng.gen_range(0..pool.len())])
                };
            }
            self.peers[p].tft_unchoked = tft;
            self.peers[p].optimistic = optimistic;
        }
    }

    fn transfer(&mut self) {
        let n = self.peers.len();
        let round_seconds = self.config.round_seconds;
        for p in 0..n {
            if !self.uploads(p) {
                continue;
            }
            // Active flows: unchoked positions whose peer is (still)
            // interested in p.
            let mut targets: Vec<(usize, bool)> = self.peers[p]
                .tft_unchoked
                .iter()
                .map(|&k| (k, true))
                .collect();
            if let Some(k) = self.peers[p].optimistic {
                if !targets.iter().any(|&(t, _)| t == k) {
                    targets.push((k, false));
                }
            }
            targets.retain(|&(k, _)| self.interested(self.neighbors[p][k], p));
            if targets.is_empty() {
                continue;
            }
            let share = self.peers[p].upload_kbps * round_seconds / targets.len() as f64;
            for &(k, is_tft) in &targets {
                let q = self.neighbors[p][k];
                self.deliver(p, q, share, is_tft);
            }
        }
    }

    /// Delivers `kbit` from `p` to `q`, converting credit into rarest-first
    /// pieces.
    fn deliver(&mut self, p: PeerId, q: PeerId, kbit: f64, is_tft: bool) {
        let pos_of_p = self.neighbors[q]
            .iter()
            .position(|&v| v == p)
            .expect("overlay adjacency is symmetric");
        self.peers[p].total_up += kbit;
        self.peers[q].total_down += kbit;
        if is_tft {
            self.peers[p].tft_up += kbit;
            self.peers[q].tft_down += kbit;
        }
        self.peers[q].received_curr[pos_of_p] += kbit;
        if self.config.fluid_content {
            return; // rates only; no piece bookkeeping in fluid mode
        }
        self.peers[q].credit[pos_of_p] += kbit;
        while self.peers[q].credit[pos_of_p] >= self.config.piece_size_kbit {
            let pick = {
                let (qp, pp) = (&self.peers[q].pieces, &self.peers[p].pieces);
                qp.rarest_missing_from(pp, &self.availability)
            };
            let Some(piece) = pick else {
                // Nothing useful left from p this round; credit waits in
                // case p acquires new pieces.
                break;
            };
            self.peers[q].credit[pos_of_p] -= self.config.piece_size_kbit;
            self.peers[q].pieces.insert(piece);
            self.availability[piece] += 1;
            if self.peers[q].pieces.is_complete() && self.peers[q].completed_round.is_none() {
                self.peers[q].completed_round = Some(self.round + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_uploads(n: usize, kbps: f64) -> Vec<f64> {
        vec![kbps; n]
    }

    fn small_config(leechers: usize, seeds: usize) -> SwarmConfig {
        SwarmConfig::builder()
            .leechers(leechers)
            .seeds(seeds)
            .piece_count(64)
            .piece_size_kbit(400.0)
            .seed(42)
            .build()
    }

    #[test]
    fn construction_shapes() {
        let cfg = small_config(20, 2);
        let swarm = Swarm::new(cfg, &uniform_uploads(22, 500.0));
        assert_eq!(swarm.peer_count(), 22);
        // Seeds are the last indices and complete.
        assert!(swarm.peer(20).is_original_seed());
        assert!(swarm.peer(21).pieces().is_complete());
        assert!(!swarm.peer(0).is_original_seed());
        // Availability counts all holders.
        assert!(swarm.availability().iter().all(|&a| a >= 2));
    }

    #[test]
    fn conservation_of_traffic() {
        let cfg = small_config(25, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(26, 400.0));
        swarm.run(30);
        let up: f64 = (0..26).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..26).map(|p| swarm.peer(p).total_downloaded()).sum();
        assert!(up > 0.0);
        assert!((up - down).abs() < 1e-6, "up {up} vs down {down}");
    }

    #[test]
    fn pieces_only_increase_and_availability_consistent() {
        let cfg = small_config(15, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(16, 600.0));
        let mut prev: Vec<usize> = (0..16).map(|p| swarm.peer(p).pieces().count()).collect();
        for _ in 0..25 {
            swarm.round();
            for p in 0..16 {
                let now = swarm.peer(p).pieces().count();
                assert!(now >= prev[p], "peer {p} lost pieces");
                prev[p] = now;
            }
            // Recount availability from scratch.
            for i in 0..swarm.config().piece_count {
                let holders = (0..16)
                    .filter(|&p| swarm.peer(p).pieces().contains(i))
                    .count() as u32;
                assert_eq!(holders, swarm.availability()[i], "piece {i}");
            }
        }
    }

    #[test]
    fn seeds_never_download() {
        let cfg = small_config(12, 2);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(14, 500.0));
        swarm.run(20);
        for p in 12..14 {
            assert_eq!(swarm.peer(p).total_downloaded(), 0.0);
            assert!(swarm.peer(p).total_uploaded() > 0.0);
        }
    }

    #[test]
    fn swarm_completes_with_enough_rounds() {
        let cfg = SwarmConfig::builder()
            .leechers(10)
            .seeds(1)
            .piece_count(32)
            .piece_size_kbit(100.0)
            .initial_completion(0.5)
            .seed(3)
            .build();
        let mut swarm = Swarm::new(cfg, &uniform_uploads(11, 1000.0));
        for _ in 0..400 {
            swarm.round();
            if swarm.completed_count() == 10 {
                break;
            }
        }
        assert_eq!(swarm.completed_count(), 10, "swarm failed to complete");
        // Completion rounds recorded and within the horizon.
        for p in 0..10 {
            assert!(swarm.peer(p).completed_round().is_some());
        }
    }

    #[test]
    fn upload_capacity_respected_per_round() {
        let cfg = small_config(20, 1);
        let uploads = uniform_uploads(21, 300.0);
        let mut swarm = Swarm::new(cfg, &uploads);
        for _ in 0..10 {
            let before: Vec<f64> = (0..21).map(|p| swarm.peer(p).total_uploaded()).collect();
            swarm.round();
            for p in 0..21 {
                let sent = swarm.peer(p).total_uploaded() - before[p];
                let cap = uploads[p] * swarm.config().round_seconds;
                assert!(sent <= cap + 1e-9, "peer {p} sent {sent} above cap {cap}");
            }
        }
    }

    #[test]
    fn unchoke_counts_bounded_by_slots() {
        let cfg = small_config(30, 1);
        let mut swarm = Swarm::new(cfg, &uniform_uploads(31, 500.0));
        for _ in 0..15 {
            swarm.round();
            for p in 0..31 {
                assert!(swarm.tft_unchoked(p).len() <= swarm.config().tft_slots);
                // Optimistic target is never also a TFT target.
                if let Some(o) = swarm.optimistic_unchoked(p) {
                    assert!(!swarm.tft_unchoked(p).contains(&o));
                }
            }
        }
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let mk = || {
            let cfg = small_config(18, 1);
            let mut swarm = Swarm::new(cfg, &uniform_uploads(19, 450.0));
            swarm.run(12);
            (0..19)
                .map(|p| swarm.peer(p).total_downloaded())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn completed_leechers_keep_seeding_when_configured() {
        let cfg = SwarmConfig::builder()
            .leechers(8)
            .seeds(1)
            .piece_count(16)
            .piece_size_kbit(50.0)
            .initial_completion(0.8)
            .seed_after_completion(true)
            .seed(5)
            .build();
        let mut swarm = Swarm::new(cfg, &uniform_uploads(9, 2000.0));
        swarm.run(100);
        assert_eq!(swarm.completed_count(), 8);
        // Completed leechers continued to upload after completing.
        let up: f64 = (0..8).map(|p| swarm.peer(p).total_uploaded()).sum();
        assert!(up > 0.0);
    }

    #[test]
    #[should_panic(expected = "one upload capacity per peer")]
    fn wrong_capacity_count_panics() {
        let cfg = small_config(5, 1);
        let _ = Swarm::new(cfg, &uniform_uploads(3, 100.0));
    }

    #[test]
    #[should_panic(expected = "one behavior per peer")]
    fn wrong_behavior_count_panics() {
        let cfg = small_config(5, 1);
        let _ = Swarm::with_behaviors(
            cfg,
            &uniform_uploads(6, 100.0),
            &[PeerBehavior::Compliant; 2],
        );
    }

    #[test]
    fn all_compliant_behaviors_match_default_constructor() {
        let mk = |explicit: bool| {
            let cfg = small_config(18, 1);
            let uploads = uniform_uploads(19, 450.0);
            let mut swarm = if explicit {
                Swarm::with_behaviors(cfg, &uploads, &[PeerBehavior::Compliant; 19])
            } else {
                Swarm::new(cfg, &uploads)
            };
            swarm.run(12);
            (0..19)
                .map(|p| swarm.peer(p).total_downloaded())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn free_riders_upload_nothing_but_still_download() {
        let mut cfg = small_config(20, 2);
        cfg.fluid_content = true;
        // Heterogeneous capacities so TFT ranks carry signal; free riders
        // occupy the last leecher indices (the scenario layer's convention).
        let uploads: Vec<f64> = (0..22).map(|i| 300.0 + 40.0 * i as f64).collect();
        let mut behaviors = vec![PeerBehavior::Compliant; 22];
        behaviors[18] = PeerBehavior::FreeRider;
        behaviors[19] = PeerBehavior::FreeRider;
        let mut swarm = Swarm::with_behaviors(cfg, &uploads, &behaviors);
        swarm.run(40);
        for p in [18, 19] {
            assert_eq!(
                swarm.peer(p).total_uploaded(),
                0.0,
                "free rider {p} uploaded"
            );
            // Optimistic slots still feed them.
            assert!(swarm.peer(p).total_downloaded() > 0.0);
            assert!(swarm.tft_unchoked(p).is_empty());
            assert!(swarm.optimistic_unchoked(p).is_none());
        }
        // Free riders live off the optimistic economy alone: they download
        // strictly less than the median compliant leecher.
        let mut compliant: Vec<f64> = (0..18).map(|p| swarm.peer(p).total_downloaded()).collect();
        compliant.sort_by(f64::total_cmp);
        let median = compliant[compliant.len() / 2];
        for p in [18, 19] {
            assert!(
                swarm.peer(p).total_downloaded() < median,
                "free rider {p} outperformed the median compliant peer"
            );
        }
    }

    #[test]
    fn altruists_upload_without_reciprocation_signal() {
        let mut cfg = small_config(20, 1);
        cfg.fluid_content = true;
        let mut behaviors = vec![PeerBehavior::Compliant; 21];
        behaviors[3] = PeerBehavior::Altruistic;
        let mut swarm = Swarm::with_behaviors(cfg, &uniform_uploads(21, 500.0), &behaviors);
        swarm.run(30);
        assert_eq!(swarm.peer(3).behavior(), PeerBehavior::Altruistic);
        // Altruists keep uploading and (being leechers) keep downloading.
        assert!(swarm.peer(3).total_uploaded() > 0.0);
        assert!(swarm.peer(3).total_downloaded() > 0.0);
    }
}
