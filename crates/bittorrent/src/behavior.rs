//! Per-peer protocol behaviors (the scenario axis beyond bandwidth).
//!
//! The paper's §6 analysis assumes every leecher runs the reference
//! Tit-for-Tat policy; real swarms mix strategies. This axis models the
//! two classic deviations studied in the clustering/sharing-incentives
//! literature (Legout et al.):
//!
//! * **free riders** — leech but never unchoke anyone (zero upload
//!   contribution); they only receive through other peers' optimistic
//!   slots, which bounds their download at the "generous" bandwidth share;
//! * **altruists** — upload like seeds even while leeching: they rotate
//!   their unchokes uniformly at random over interested neighbours instead
//!   of reciprocating, donating capacity without demanding a TFT signal.

use serde::{Deserialize, Serialize};

/// How a peer runs the choking algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PeerBehavior {
    /// Reference client: Tit-for-Tat reciprocation plus the optimistic
    /// rotation (the paper's §6 setting).
    Compliant,
    /// Never uploads: all unchoke slots stay closed.
    FreeRider,
    /// Uploads without demanding reciprocation: rechokes like a seed
    /// (uniform random rotation over interested neighbours) even while
    /// still leeching.
    Altruistic,
}

impl PeerBehavior {
    /// Whether this behavior uploads at all.
    #[must_use]
    #[inline]
    pub fn uploads(self) -> bool {
        !matches!(self, PeerBehavior::FreeRider)
    }

    /// Whether this behavior ignores the reciprocation signal when
    /// selecting unchoke targets.
    #[must_use]
    #[inline]
    pub fn ignores_reciprocation(self) -> bool {
        matches!(self, PeerBehavior::Altruistic)
    }
}
