//! Round-based BitTorrent swarm simulator with Tit-for-Tat choking,
//! optimistic unchoke, and rarest-first piece selection — the application
//! substrate of *Stratification in P2P Networks* (§6).
//!
//! The paper argues that BitTorrent's TFT policy *is* a global-ranking
//! b-matching run under random initiatives: each peer uploads to the
//! `b₀ = 3` contacts it downloaded the most from in the last rechoke
//! period, while one *generous* (optimistic) slot probes random partners.
//! This crate implements that protocol faithfully enough to observe the
//! predicted phenomena in vivo:
//!
//! * **stratification** — reciprocated TFT partners converge to nearby
//!   upload-bandwidth ranks ([`metrics::stratification_snapshot`]);
//! * **share-ratio structure** — fast peers subsidize the swarm, peers at
//!   bandwidth density peaks trade at ratio ≈ 1
//!   ([`metrics::leecher_performance`]).
//!
//! The simulation is **post-flash-crowd** by default: leechers start with a
//! random fraction of pieces so content availability is not the bottleneck,
//! matching the paper's §6 assumption.
//!
//! # Example
//!
//! ```
//! use strat_bittorrent::{metrics, Swarm, SwarmConfig};
//!
//! let config = SwarmConfig::builder()
//!     .leechers(40)
//!     .seeds(1)
//!     .fluid_content(true) // steady-state §6 setting
//!     .seed(1)
//!     .build();
//! // Two bandwidth classes.
//! let mut uploads = vec![100.0; 20];
//! uploads.extend(vec![1000.0; 21]);
//! let mut swarm = Swarm::new(config, &uploads);
//! swarm.run_rounds(50);
//!
//! let snap = metrics::stratification_snapshot(&swarm);
//! assert!(snap.reciprocal_pairs > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
// Index-coupled loops are the domain idiom here: round loops couple peer indices across multiple state arrays.
#![allow(clippy::needless_range_loop)]

mod avail;
mod behavior;
mod config;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod observer;
pub mod overlay;
mod piece;
pub mod reference;
pub mod session;
mod swarm;
pub mod universe;

pub use behavior::PeerBehavior;
pub use config::{SwarmConfig, SwarmConfigBuilder};
pub use events::{CompletionRecord, EventEngine, EventStats, EventTiming};
pub use faults::{FaultPlan, FaultWindow};
pub use observer::{
    ClusterAffinity, ClusterObserver, NullObserver, RunObserver, TraceLog, TraceObserver,
};
pub use piece::PieceSet;
pub use swarm::{Peer, PeerId, Population, Swarm};
pub use universe::{
    derive_seed, CapacitySplit, MembershipModel, Universe, UniverseCompletion, UniverseConfig,
    UniverseStats,
};
