//! Multi-swarm universe: one shared peer population across many torrents.
//!
//! Production trackers serve thousands of torrents over a single peer
//! population; the paper's stratification theory is stated per swarm. This
//! module runs a set of [`Session`]s — one per torrent — over **shared
//! members**, so cross-swarm questions become askable: does a peer's
//! bandwidth class cluster consistently in *every* torrent it joins?
//!
//! A [`Universe`] member is born when a session's arrival process admits a
//! peer (the *claim pass* adopts the arrival, its session becomes the
//! member's **home torrent**) and may join extra torrents chosen by the
//! [`MembershipModel`] ∝ per-torrent popularity weights. Each membership
//! is an ordinary session peer — a *replica* — tracked by its
//! generation-tagged [`SessionPeerId`], so the sessions' own churn,
//! tracker wiring and peer-list caps apply unchanged. The member's upload
//! capacity is **split** across its active replicas by the
//! [`CapacitySplit`] policy at every rechoke boundary; when a replica
//! departs (its torrent's churn rules) the survivors re-absorb its share,
//! and when the *home* occupant departs the member leaves the universe —
//! its replicas are withdrawn everywhere.
//!
//! # Determinism contract
//!
//! Universe randomness lives in its own keyed ChaCha streams
//! (`universe_seed` under the `"universe"` domain separator, stream
//! `(round, event)`), and every per-torrent stream family is keyed by
//! [`derive_seed`]`(base, torrent)` with `derive_seed(base, 0) == base`.
//! The claim, sync and rebalance passes either consume only universe
//! streams or write values that are bitwise no-ops for single-membership
//! members — so a **1-torrent universe with no capacity classes is
//! bit-identical to the plain [`Session`]**, serial and parallel, at any
//! thread count (`tests/universe_differential.rs`). Multi-torrent runs
//! are bit-reproducible for any thread count for the same reason the
//! sessions are.
//!
//! Sessions with [`compact_threshold`] set are rejected: compaction
//! invalidates outstanding handles wholesale, and the universe keeps
//! handles across rounds.
//!
//! [`compact_threshold`]: crate::session::SessionConfig::compact_threshold

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::observer::{NullObserver, RunObserver, UNTRACKED_CLASS};
use crate::session::{Session, SessionPeerId};

/// Derives the per-torrent seed of a keyed stream family: torrent 0 keeps
/// the base seed exactly (the 1-torrent bit-identity anchor), and the
/// golden-ratio multiply decorrelates the rest.
#[must_use]
pub fn derive_seed(base: u64, torrent: u64) -> u64 {
    base ^ torrent.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// One independent ChaCha stream per `(round, event)` pair under the
/// universe's own domain separator, so universe draws can never collide
/// with session, tracker, fault or swarm streams.
fn universe_rng(seed: u64, round: u64, event: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x756e_6976_6572_7365); // "universe"
    rng.set_stream((round << 32) | event);
    rng
}

/// Stream of a round's claim pass (adoption of session arrivals plus
/// their extra-membership draws and joins, in torrent-then-arrival
/// order).
const CLAIM_EVENT: u64 = 0;
/// Stream of the construction-time membership draws for the initial
/// populations.
const INIT_EVENT: u64 = 1;

/// How many torrents a member joins beyond its home torrent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MembershipModel {
    /// Every member stays in its home torrent only (the degenerate
    /// universe: `T` independent sessions).
    Single,
    /// Every member joins exactly `extra` additional torrents (capped at
    /// `torrents − 1`), drawn without replacement ∝ popularity weight.
    Fixed {
        /// Additional torrents per member.
        extra: usize,
    },
}

/// How a member's upload capacity is split across its active replicas at
/// each rechoke boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CapacitySplit {
    /// Every active replica gets `capacity / active_count`.
    EqualShare,
    /// Replicas are weighted by *demand* — `1 + missing piece count` in
    /// their torrent — so a member pours capacity into the torrents it is
    /// still downloading and tapers towards torrents it seeds. RNG-free
    /// and recomputed every round from swarm state, so the split is
    /// deterministic.
    DemandWeighted,
}

/// Parameters of a [`Universe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Per-member multi-torrent membership process.
    pub membership: MembershipModel,
    /// Capacity-split policy across a member's active replicas.
    pub split: CapacitySplit,
    /// Capacity classes assigned to members round-robin in claim order.
    /// Empty (the default) keeps each member at the capacity its home
    /// session handed it — the bit-identity configuration.
    pub class_upload_kbps: Vec<f64>,
    /// Per-torrent popularity weights driving the extra-membership draws.
    /// Empty means uniform; otherwise the length must equal the torrent
    /// count and every weight must be positive.
    pub popularity: Vec<f64>,
    /// Seed of the universe's `(round, event)` streams.
    pub universe_seed: u64,
}

impl Default for UniverseConfig {
    /// Single membership, equal split, no capacity classes, uniform
    /// popularity, seed `0x0a11`.
    fn default() -> Self {
        Self {
            membership: MembershipModel::Single,
            split: CapacitySplit::EqualShare,
            class_upload_kbps: Vec::new(),
            popularity: Vec::new(),
            universe_seed: 0x0a11,
        }
    }
}

impl UniverseConfig {
    /// Checks every constraint [`Universe::new`] enforces — the single
    /// source of truth shared with the scenario layer's error path.
    ///
    /// # Errors
    ///
    /// Returns a human-readable constraint violation.
    pub fn validate(&self, torrents: usize) -> Result<(), String> {
        if torrents == 0 {
            return Err("a universe needs at least one torrent".to_string());
        }
        for &c in &self.class_upload_kbps {
            if !(c.is_finite() && c > 0.0) {
                return Err(format!("class capacities must be positive kbps, got {c}"));
            }
        }
        if !self.popularity.is_empty() {
            if self.popularity.len() != torrents {
                return Err(format!(
                    "popularity weights must cover every torrent: got {} weights for {torrents} torrents",
                    self.popularity.len()
                ));
            }
            for &w in &self.popularity {
                if !(w.is_finite() && w > 0.0) {
                    return Err(format!("popularity weights must be positive, got {w}"));
                }
            }
        }
        Ok(())
    }
}

/// One membership of a member: the torrent plus the generation-tagged
/// handle of its session peer.
#[derive(Debug, Clone)]
struct Replica {
    torrent: u32,
    id: SessionPeerId,
    /// False once the occupant departed (own churn or withdrawal).
    active: bool,
    /// Whether this membership's completion is already in the records.
    completion_recorded: bool,
}

/// A universe member: class, capacity, and its replicas (home first).
#[derive(Debug, Clone)]
struct Member {
    /// Capacity-class index, or [`UNTRACKED_CLASS`] for publisher seeds.
    class: u32,
    /// Total upload capacity split across the active replicas (kbps).
    capacity: f64,
    /// False once the home occupant departed.
    active: bool,
    replicas: Vec<Replica>,
}

/// One `(member, torrent)` completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniverseCompletion {
    /// Member index.
    pub member: u32,
    /// Torrent the download completed in.
    pub torrent: u32,
    /// The member's capacity class ([`UNTRACKED_CLASS`] for publishers —
    /// which never complete, so it does not occur in practice).
    pub class: u32,
    /// Round the member joined that torrent.
    pub arrival_round: u64,
    /// Round the download completed.
    pub completed_round: u64,
}

/// Cumulative universe statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UniverseStats {
    /// Members ever claimed (initial populations included).
    pub members: u64,
    /// Replicas created in non-home torrents.
    pub cross_joins: u64,
    /// Members whose home occupant departed (their replicas were
    /// withdrawn everywhere).
    pub member_departures: u64,
    /// Non-home replicas that departed through their own torrent's churn.
    pub replica_departures: u64,
    /// Per-(member, torrent) completions recorded.
    pub completions: u64,
    /// The completion records, in recording order.
    pub completion_records: Vec<UniverseCompletion>,
}

/// `slot_member` sentinel for unclaimed slots.
const NO_MEMBER: u32 = u32::MAX;

/// A set of swarms over one shared peer population (see the
/// [module docs](self)).
///
/// # Examples
///
/// ```
/// use strat_bittorrent::session::{ArrivalProcess, Session, SessionConfig};
/// use strat_bittorrent::universe::{
///     derive_seed, CapacitySplit, MembershipModel, Universe, UniverseConfig,
/// };
/// use strat_bittorrent::{Swarm, SwarmConfig};
///
/// let sessions: Vec<Session> = (0..3)
///     .map(|t| {
///         let config = SwarmConfig::builder()
///             .leechers(12)
///             .seeds(2)
///             .piece_count(32)
///             .piece_size_kbit(100.0)
///             .seed(derive_seed(7, t))
///             .build();
///         let swarm = Swarm::new(config, &vec![400.0; 14]);
///         Session::new(
///             swarm,
///             SessionConfig {
///                 arrival: ArrivalProcess::Poisson { rate: 1.0 },
///                 session_seed: derive_seed(0x5e55, t),
///                 ..SessionConfig::default()
///             },
///         )
///     })
///     .collect();
/// let mut universe = Universe::new(
///     sessions,
///     UniverseConfig {
///         membership: MembershipModel::Fixed { extra: 1 },
///         split: CapacitySplit::EqualShare,
///         ..UniverseConfig::default()
///     },
/// );
/// universe.run_rounds(20, None);
/// assert!(universe.stats().cross_joins > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Universe {
    sessions: Vec<Session>,
    config: UniverseConfig,
    /// Resolved popularity weights (uniform when the config left them
    /// empty).
    popularity: Vec<f64>,
    members: Vec<Member>,
    /// Per-torrent `slot → member` map ([`NO_MEMBER`] when unclaimed).
    slot_member: Vec<Vec<u32>>,
    /// Round-robin cursor over `class_upload_kbps`, in claim order.
    class_counter: u64,
    /// Rounds stepped so far (all sessions advance in lockstep).
    round: u64,
    stats: UniverseStats,
}

impl Universe {
    /// Wraps pre-built sessions — one per torrent — into a universe and
    /// claims their initial populations as members (publisher seeds stay
    /// single-torrent and untracked; initial leechers draw extra
    /// memberships from the construction stream). Multi-torrent
    /// universes reserve overlay slack in every session so cross-swarm
    /// joins have room to wire; a 1-torrent universe leaves its session
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics when `sessions` is empty, the configuration fails
    /// [`UniverseConfig::validate`], any session has `compact_threshold`
    /// set, or any session has already stepped rounds.
    #[must_use]
    pub fn new(mut sessions: Vec<Session>, config: UniverseConfig) -> Self {
        if let Err(reason) = config.validate(sessions.len()) {
            panic!("invalid universe configuration: {reason}");
        }
        for session in &sessions {
            assert!(
                session.config().compact_threshold.is_none(),
                "universe sessions must not compact (compaction invalidates the universe's handles)"
            );
            assert_eq!(
                session.round_count(),
                0,
                "universe sessions must start unstepped"
            );
        }
        let torrents = sessions.len();
        if torrents > 1 {
            for session in &mut sessions {
                session.reserve_join_slack();
            }
        }
        for session in &mut sessions {
            session.track_arrivals(true);
        }
        let popularity = if config.popularity.is_empty() {
            vec![1.0; torrents]
        } else {
            config.popularity.clone()
        };
        let slot_member = sessions
            .iter()
            .map(|s| vec![NO_MEMBER; s.swarm().peer_count()])
            .collect();
        let mut universe = Self {
            sessions,
            config,
            popularity,
            members: Vec::new(),
            slot_member,
            class_counter: 0,
            round: 0,
            stats: UniverseStats::default(),
        };
        universe.claim_initial_populations();
        universe
    }

    /// Claims every initially present peer of every session, in
    /// torrent-then-slot order. Publisher seeds become single-torrent
    /// untracked members at their swarm capacity; leechers get classes,
    /// capacities and extra memberships like round arrivals, drawing
    /// from the construction stream.
    fn claim_initial_populations(&mut self) {
        let mut rng = universe_rng(self.config.universe_seed, 0, INIT_EVENT);
        let obs = vec![NullObserver; self.sessions.len()];
        // Snapshot the pre-universe populations: cross-joins from earlier
        // torrents grow later arenas, and those newcomers are already
        // claimed replicas, not fresh members.
        let initial_counts: Vec<usize> = self
            .sessions
            .iter()
            .map(|s| s.swarm().peer_count())
            .collect();
        for t in 0..self.sessions.len() {
            for slot in 0..initial_counts[t] {
                if !self.sessions[t].swarm().is_present(slot)
                    || self.member_of_slot(t, slot).is_some()
                {
                    continue;
                }
                let id = self.sessions[t].id_of(slot);
                if self.sessions[t].swarm().peer(slot).is_original_seed() {
                    let capacity = self.sessions[t].swarm().peer(slot).upload_kbps();
                    let m = self.members.len() as u32;
                    self.members.push(Member {
                        class: UNTRACKED_CLASS,
                        capacity,
                        active: true,
                        replicas: vec![Replica {
                            torrent: t as u32,
                            id,
                            active: true,
                            completion_recorded: false,
                        }],
                    });
                    self.map_slot(t, slot, m);
                    self.stats.members += 1;
                } else {
                    self.claim(t, id, &mut rng, &obs);
                }
            }
        }
    }

    /// The number of torrents.
    #[must_use]
    pub fn torrent_count(&self) -> usize {
        self.sessions.len()
    }

    /// The per-torrent sessions (read access).
    #[must_use]
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The session of torrent `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn session(&self, t: usize) -> &Session {
        &self.sessions[t]
    }

    /// The universe configuration.
    #[must_use]
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &UniverseStats {
        &self.stats
    }

    /// Rounds stepped so far.
    #[must_use]
    pub fn round_count(&self) -> u64 {
        self.round
    }

    /// Members ever claimed (inactive ones included).
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The capacity class of member `m` ([`UNTRACKED_CLASS`] for
    /// publisher seeds, class 0 when no classes are configured).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn member_class(&self, m: usize) -> u32 {
        self.members[m].class
    }

    /// The total upload capacity of member `m` (kbps).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn member_capacity(&self, m: usize) -> f64 {
        self.members[m].capacity
    }

    /// Whether member `m`'s home occupant is still present.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn member_is_active(&self, m: usize) -> bool {
        self.members[m].active
    }

    /// Member `m`'s active memberships as `(torrent, handle)` pairs, home
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn member_replicas(&self, m: usize) -> impl Iterator<Item = (usize, SessionPeerId)> + '_ {
        self.members[m]
            .replicas
            .iter()
            .filter(|r| r.active)
            .map(|r| (r.torrent as usize, r.id))
    }

    /// The member occupying `slot` of torrent `t`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn member_of_slot(&self, t: usize, slot: usize) -> Option<usize> {
        match self.slot_member[t].get(slot) {
            Some(&m) if m != NO_MEMBER => Some(m as usize),
            _ => None,
        }
    }

    /// Runs `rounds` universe rounds unobserved. `threads` selects the
    /// sessions' round engine: `None` is serial, `Some(t)` the
    /// indexed-stream parallel engine (bit-identical for any `t`).
    pub fn run_rounds(&mut self, rounds: u64, threads: Option<usize>) {
        let obs = vec![NullObserver; self.sessions.len()];
        for _ in 0..rounds {
            self.step(threads, &obs);
        }
    }

    /// [`run_rounds`](Self::run_rounds) with one [`RunObserver`] tap per
    /// torrent (`obs[t]` sees torrent `t`'s events). Observers are pure
    /// taps; attaching them changes no universe state.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the torrent count.
    pub fn run_rounds_with<O: RunObserver>(
        &mut self,
        rounds: u64,
        threads: Option<usize>,
        obs: &[O],
    ) {
        for _ in 0..rounds {
            self.step(threads, obs);
        }
    }

    /// One universe round: every session's membership pass (torrent
    /// order), the claim pass (adopt fresh arrivals, draw extra
    /// memberships, cross-join), the sync pass (detect departures,
    /// withdraw leavers' replicas), the rebalance pass (capacity split at
    /// the rechoke boundary), every session's round pass, and completion
    /// recording.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the torrent count.
    pub fn step<O: RunObserver>(&mut self, threads: Option<usize>, obs: &[O]) {
        assert_eq!(
            obs.len(),
            self.sessions.len(),
            "one observer per torrent required"
        );
        for t in 0..self.sessions.len() {
            self.sessions[t].membership_pass_with(&obs[t]);
        }
        self.claim_pass(obs);
        self.sync_pass(obs);
        self.rebalance();
        for t in 0..self.sessions.len() {
            self.sessions[t].round_pass_with(threads, &obs[t]);
        }
        self.record_completions();
        self.round += 1;
    }

    /// Points `slot` of torrent `t` at member `m`, growing the map to
    /// cover arena growth.
    fn map_slot(&mut self, t: usize, slot: usize, m: u32) {
        let map = &mut self.slot_member[t];
        if slot >= map.len() {
            map.resize(slot + 1, NO_MEMBER);
        }
        map[slot] = m;
    }

    /// Adopts the round's session arrivals as members, in
    /// torrent-then-admission order, drawing class assignments
    /// (round-robin) and extra memberships from the round's claim
    /// stream.
    fn claim_pass<O: RunObserver>(&mut self, obs: &[O]) {
        let mut rng = universe_rng(self.config.universe_seed, self.round, CLAIM_EVENT);
        for t in 0..self.sessions.len() {
            let fresh = self.sessions[t].drain_recent_arrivals();
            for id in fresh {
                self.claim(t, id, &mut rng, obs);
            }
        }
    }

    /// Claims one arrival of torrent `home` as a new member: assigns its
    /// class and capacity, then draws and joins its extra torrents.
    fn claim<O: RunObserver>(
        &mut self,
        home: usize,
        id: SessionPeerId,
        rng: &mut ChaCha8Rng,
        obs: &[O],
    ) {
        let slot = self.sessions[home]
            .resolve(id)
            .expect("claimed arrivals are present");
        let (class, capacity) = if self.config.class_upload_kbps.is_empty() {
            (0, self.sessions[home].swarm().peer(slot).upload_kbps())
        } else {
            let k = self.config.class_upload_kbps.len();
            let class = (self.class_counter % k as u64) as usize;
            self.class_counter += 1;
            (class as u32, self.config.class_upload_kbps[class])
        };
        let m = self.members.len() as u32;
        let mut replicas = vec![Replica {
            torrent: home as u32,
            id,
            active: true,
            completion_recorded: false,
        }];
        self.map_slot(home, slot, m);
        let extra = match self.config.membership {
            MembershipModel::Single => 0,
            MembershipModel::Fixed { extra } => extra.min(self.sessions.len() - 1),
        };
        for t in self.draw_extra_torrents(home, extra, rng) {
            let completion = self.sessions[t].config().arrival_completion;
            let rid = self.sessions[t].join_with(capacity, completion, rng, &obs[t]);
            let rslot = rid.slot as usize;
            self.map_slot(t, rslot, m);
            replicas.push(Replica {
                torrent: t as u32,
                id: rid,
                active: true,
                completion_recorded: false,
            });
            self.stats.cross_joins += 1;
        }
        self.members.push(Member {
            class,
            capacity,
            active: true,
            replicas,
        });
        self.stats.members += 1;
    }

    /// Draws `extra` distinct torrents ≠ `home`, without replacement,
    /// each pick ∝ popularity weight among the torrents still available.
    fn draw_extra_torrents(&self, home: usize, extra: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
        if extra == 0 {
            return Vec::new();
        }
        let mut avail: Vec<usize> = (0..self.sessions.len()).filter(|&t| t != home).collect();
        let mut chosen = Vec::with_capacity(extra);
        for _ in 0..extra {
            if avail.is_empty() {
                break;
            }
            let total: f64 = avail.iter().map(|&t| self.popularity[t]).sum();
            let mut x = rng.gen_range(0.0..total);
            let mut pick = avail.len() - 1;
            for (i, &t) in avail.iter().enumerate() {
                x -= self.popularity[t];
                if x <= 0.0 {
                    pick = i;
                    break;
                }
            }
            chosen.push(avail.swap_remove(pick));
        }
        chosen
    }

    /// Detects departures since the last sync: a stale *home* handle
    /// retires the member and withdraws its remaining replicas; a stale
    /// non-home handle just deactivates that replica (its capacity share
    /// flows back to the survivors at the next rebalance). Runs after
    /// the claim pass, so slots recycled by fresh arrivals already point
    /// at their new members and are left alone.
    fn sync_pass<O: RunObserver>(&mut self, obs: &[O]) {
        for m in 0..self.members.len() {
            if !self.members[m].active {
                continue;
            }
            let home_stale = {
                let home = &self.members[m].replicas[0];
                home.active
                    && self.sessions[home.torrent as usize]
                        .resolve(home.id)
                        .is_none()
            };
            if home_stale {
                self.members[m].active = false;
                self.members[m].replicas[0].active = false;
                self.unmap_stale(m, 0);
                self.stats.member_departures += 1;
                for r in 1..self.members[m].replicas.len() {
                    if !self.members[m].replicas[r].active {
                        continue;
                    }
                    let (t, id) = {
                        let rep = &self.members[m].replicas[r];
                        (rep.torrent as usize, rep.id)
                    };
                    self.sessions[t].leave(id, &obs[t]);
                    self.members[m].replicas[r].active = false;
                    self.unmap_stale(m, r);
                }
                continue;
            }
            for r in 1..self.members[m].replicas.len() {
                let stale = {
                    let rep = &self.members[m].replicas[r];
                    rep.active
                        && self.sessions[rep.torrent as usize]
                            .resolve(rep.id)
                            .is_none()
                };
                if stale {
                    self.members[m].replicas[r].active = false;
                    self.unmap_stale(m, r);
                    self.stats.replica_departures += 1;
                }
            }
        }
    }

    /// Clears replica `r` of member `m` from the slot map, unless a
    /// fresh claim already re-pointed the slot.
    fn unmap_stale(&mut self, m: usize, r: usize) {
        let rep = &self.members[m].replicas[r];
        let (t, slot) = (rep.torrent as usize, rep.id.slot as usize);
        if self.slot_member[t].get(slot) == Some(&(m as u32)) {
            self.slot_member[t][slot] = NO_MEMBER;
        }
    }

    /// The rechoke-boundary capacity split: writes each member's
    /// per-replica upload capacities. A single-membership member gets
    /// its full capacity written back verbatim (a bitwise no-op when the
    /// capacity came from the session), which is what keeps the
    /// 1-torrent universe bit-identical to the plain session.
    fn rebalance(&mut self) {
        for m in 0..self.members.len() {
            if !self.members[m].active {
                continue;
            }
            let active: Vec<usize> = (0..self.members[m].replicas.len())
                .filter(|&r| self.members[m].replicas[r].active)
                .collect();
            let capacity = self.members[m].capacity;
            if active.len() == 1 {
                let (t, id) = {
                    let rep = &self.members[m].replicas[active[0]];
                    (rep.torrent as usize, rep.id)
                };
                let ok = self.sessions[t].set_upload_kbps(id, capacity);
                debug_assert!(ok, "active replicas resolve after the sync pass");
                continue;
            }
            let weights: Vec<f64> = match self.config.split {
                CapacitySplit::EqualShare => vec![1.0; active.len()],
                CapacitySplit::DemandWeighted => active
                    .iter()
                    .map(|&r| {
                        let rep = &self.members[m].replicas[r];
                        let t = rep.torrent as usize;
                        let slot = self.sessions[t]
                            .resolve(rep.id)
                            .expect("active replicas resolve after the sync pass");
                        let peer = self.sessions[t].swarm().peer(slot);
                        let missing =
                            self.sessions[t].swarm().config().piece_count - peer.pieces().count();
                        1.0 + missing as f64
                    })
                    .collect(),
            };
            let total: f64 = weights.iter().sum();
            for (i, &r) in active.iter().enumerate() {
                let (t, id) = {
                    let rep = &self.members[m].replicas[r];
                    (rep.torrent as usize, rep.id)
                };
                let ok = self.sessions[t].set_upload_kbps(id, capacity * weights[i] / total);
                debug_assert!(ok, "active replicas resolve after the sync pass");
            }
        }
    }

    /// Records fresh per-(member, torrent) completions after the round
    /// passes (a replica that completed this round is still present —
    /// its earliest possible departure is next round's membership pass).
    fn record_completions(&mut self) {
        for m in 0..self.members.len() {
            for r in 0..self.members[m].replicas.len() {
                let (t, id) = {
                    let rep = &self.members[m].replicas[r];
                    if !rep.active || rep.completion_recorded {
                        continue;
                    }
                    (rep.torrent as usize, rep.id)
                };
                let Some(slot) = self.sessions[t].resolve(id) else {
                    continue;
                };
                let peer = self.sessions[t].swarm().peer(slot);
                if peer.is_original_seed() {
                    continue;
                }
                if let Some(completed) = peer.completed_round() {
                    self.members[m].replicas[r].completion_recorded = true;
                    self.stats.completions += 1;
                    self.stats.completion_records.push(UniverseCompletion {
                        member: m as u32,
                        torrent: t as u32,
                        class: self.members[m].class,
                        arrival_round: self.sessions[t].arrival_round_of(slot),
                        completed_round: completed,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ArrivalProcess, DepartureRules, SessionConfig};
    use crate::{Swarm, SwarmConfig};

    fn session(t: u64, leechers: usize, seeds: usize, rate: f64) -> Session {
        let n = leechers + seeds;
        let cfg = SwarmConfig::builder()
            .leechers(leechers)
            .seeds(seeds)
            .piece_count(32)
            .piece_size_kbit(100.0)
            .mean_neighbors(8.0)
            .initial_completion(0.3)
            .seed(derive_seed(11, t))
            .build();
        let swarm = Swarm::new(cfg, &vec![400.0; n]);
        Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Poisson { rate },
                departure: DepartureRules {
                    leave_on_completion: 0.5,
                    seed_leave_prob: 0.3,
                    ..DepartureRules::none()
                },
                arrival_upload_kbps: 400.0,
                target_degree: 8,
                session_seed: derive_seed(0x5e55, t),
                ..SessionConfig::default()
            },
        )
    }

    fn universe(torrents: u64, extra: usize) -> Universe {
        let sessions = (0..torrents).map(|t| session(t, 10, 2, 1.5)).collect();
        Universe::new(
            sessions,
            UniverseConfig {
                membership: MembershipModel::Fixed { extra },
                ..UniverseConfig::default()
            },
        )
    }

    #[test]
    fn derive_seed_keeps_torrent_zero() {
        assert_eq!(derive_seed(42, 0), 42);
        assert_ne!(derive_seed(42, 1), 42);
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
    }

    #[test]
    fn initial_population_is_claimed() {
        let u = universe(3, 1);
        // 10 leechers + 2 seeds per torrent, every one a member.
        assert_eq!(u.stats().members, 36);
        // Every initial leecher cross-joined exactly one other torrent;
        // publishers stay home.
        assert_eq!(u.stats().cross_joins, 30);
        for t in 0..3 {
            u.session(t).swarm().validate_consistency();
        }
    }

    #[test]
    fn publishers_are_untracked_single_torrent_members() {
        let u = universe(2, 1);
        let mut untracked = 0;
        for m in 0..u.member_count() {
            if u.member_class(m) == UNTRACKED_CLASS {
                untracked += 1;
                assert_eq!(u.member_replicas(m).count(), 1);
            }
        }
        assert_eq!(untracked, 4);
    }

    #[test]
    fn members_span_torrents_and_capacity_is_conserved() {
        let mut u = universe(4, 2);
        u.run_rounds(12, None);
        assert!(u.stats().cross_joins > 30);
        // Capacity conservation at the last rebalance: the sum of a
        // member's replica capacities equals its capacity.
        let mut multi = 0;
        for m in 0..u.member_count() {
            if !u.member_is_active(m) {
                continue;
            }
            let reps: Vec<_> = u.member_replicas(m).collect();
            let total: f64 = reps
                .iter()
                .map(|&(t, id)| {
                    let slot = u.session(t).resolve(id).unwrap();
                    u.session(t).swarm().peer(slot).upload_kbps()
                })
                .sum();
            assert!(
                (total - u.member_capacity(m)).abs() < 1e-9 * u.member_capacity(m),
                "member {m}: split sums to {total}, capacity {}",
                u.member_capacity(m)
            );
            if reps.len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 0, "no member is active in several torrents");
        for t in 0..4 {
            u.session(t).swarm().validate_consistency();
        }
    }

    #[test]
    fn home_departure_withdraws_replicas_everywhere() {
        let mut u = universe(3, 2);
        u.run_rounds(30, None);
        assert!(u.stats().member_departures > 0, "{:?}", u.stats());
        for m in 0..u.member_count() {
            if !u.member_is_active(m) {
                // Retired members keep no active replicas.
                assert_eq!(u.member_replicas(m).count(), 0, "member {m}");
            }
        }
    }

    #[test]
    fn demand_weighted_split_pours_into_incomplete_torrents() {
        // Heavy pieces: three rounds leave every download in flight, so
        // the home (~30% complete) and cross-joined (0%) replicas keep
        // asymmetric demand.
        let heavy = |t: u64| {
            let cfg = SwarmConfig::builder()
                .leechers(8)
                .seeds(2)
                .piece_count(64)
                .piece_size_kbit(4000.0)
                .mean_neighbors(8.0)
                .initial_completion(0.3)
                .seed(derive_seed(11, t))
                .build();
            let swarm = Swarm::new(cfg, &[400.0; 10]);
            Session::new(
                swarm,
                SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 0.0 },
                    arrival_upload_kbps: 400.0,
                    target_degree: 8,
                    session_seed: derive_seed(0x5e55, t),
                    ..SessionConfig::default()
                },
            )
        };
        let sessions = (0..2).map(heavy).collect();
        let mut u = Universe::new(
            sessions,
            UniverseConfig {
                membership: MembershipModel::Fixed { extra: 1 },
                split: CapacitySplit::DemandWeighted,
                ..UniverseConfig::default()
            },
        );
        u.run_rounds(3, None);
        // Find a member active in two torrents with different progress and
        // check its shares follow demand.
        let mut checked = false;
        for m in 0..u.member_count() {
            let reps: Vec<_> = u.member_replicas(m).collect();
            if reps.len() != 2 {
                continue;
            }
            let missing: Vec<usize> = reps
                .iter()
                .map(|&(t, id)| {
                    let slot = u.session(t).resolve(id).unwrap();
                    u.session(t).swarm().config().piece_count
                        - u.session(t).swarm().peer(slot).pieces().count()
                })
                .collect();
            let kbps: Vec<f64> = reps
                .iter()
                .map(|&(t, id)| {
                    let slot = u.session(t).resolve(id).unwrap();
                    u.session(t).swarm().peer(slot).upload_kbps()
                })
                .collect();
            if missing[0] != missing[1] {
                assert_eq!(
                    missing[0] > missing[1],
                    kbps[0] > kbps[1],
                    "member {m}: demand {missing:?} vs split {kbps:?}"
                );
                checked = true;
            }
        }
        assert!(checked, "no member had asymmetric progress");
    }

    #[test]
    fn capacity_classes_assign_round_robin() {
        let sessions = (0..2).map(|t| session(t, 6, 1, 2.0)).collect();
        let mut u = Universe::new(
            sessions,
            UniverseConfig {
                membership: MembershipModel::Single,
                class_upload_kbps: vec![200.0, 400.0, 800.0],
                ..UniverseConfig::default()
            },
        );
        u.run_rounds(10, None);
        let mut counts = [0u64; 3];
        for m in 0..u.member_count() {
            let c = u.member_class(m);
            if c == UNTRACKED_CLASS {
                continue;
            }
            counts[c as usize] += 1;
            assert_eq!(
                u.member_capacity(m),
                u.config().class_upload_kbps[c as usize]
            );
        }
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(spread <= 1, "round-robin drifted: {counts:?}");
    }

    #[test]
    fn per_member_per_torrent_completions_are_recorded() {
        let mut u = universe(2, 1);
        u.run_rounds(60, None);
        assert!(u.stats().completions > 0);
        let mut seen = std::collections::HashSet::new();
        for rec in &u.stats().completion_records {
            assert!(
                seen.insert((rec.member, rec.torrent)),
                "duplicate completion record for member {} in torrent {}",
                rec.member,
                rec.torrent
            );
            assert!(rec.completed_round > rec.arrival_round || rec.arrival_round == 0);
            assert_ne!(rec.class, UNTRACKED_CLASS, "publishers never complete");
        }
    }

    #[test]
    fn popularity_skews_cross_joins() {
        let sessions: Vec<Session> = (0..4).map(|t| session(t, 6, 1, 2.0)).collect();
        let mut u = Universe::new(
            sessions,
            UniverseConfig {
                membership: MembershipModel::Fixed { extra: 1 },
                popularity: vec![8.0, 1.0, 1.0, 1.0],
                ..UniverseConfig::default()
            },
        );
        u.run_rounds(25, None);
        // Torrent 0 is 8× as popular, so it should receive the most
        // cross-joins: count non-home replicas per torrent.
        let mut joins = [0u64; 4];
        for m in 0..u.member_count() {
            for (i, (t, _)) in u.member_replicas(m).enumerate() {
                if i > 0 {
                    joins[t] += 1;
                }
            }
        }
        assert!(
            joins[0] > joins[1] && joins[0] > joins[2] && joins[0] > joins[3],
            "popularity ignored: {joins:?}"
        );
    }

    #[test]
    fn multi_torrent_runs_are_thread_count_independent() {
        let run = |threads: Option<usize>| {
            let mut u = universe(3, 1);
            u.run_rounds(12, threads);
            let stats = u.stats().clone();
            let state: Vec<Vec<(bool, f64, usize)>> = (0..3)
                .map(|t| {
                    let swarm = u.session(t).swarm();
                    (0..swarm.peer_count())
                        .map(|p| {
                            (
                                swarm.is_present(p),
                                swarm.peer(p).total_downloaded(),
                                swarm.peer(p).pieces().count(),
                            )
                        })
                        .collect()
                })
                .collect();
            (stats, state)
        };
        let baseline = run(Some(1));
        for threads in [2, 8] {
            assert_eq!(run(Some(threads)), baseline, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "must not compact")]
    fn compacting_sessions_are_rejected() {
        let mut s = session(0, 4, 1, 1.0);
        let cfg = SessionConfig {
            compact_threshold: Some(0.5),
            ..s.config().clone()
        };
        s = Session::new(s.swarm().clone(), cfg);
        let _ = Universe::new(vec![s], UniverseConfig::default());
    }

    #[test]
    #[should_panic(expected = "popularity weights must cover")]
    fn mismatched_popularity_is_rejected() {
        let sessions = vec![session(0, 4, 1, 1.0)];
        let _ = Universe::new(
            sessions,
            UniverseConfig {
                popularity: vec![1.0, 2.0],
                ..UniverseConfig::default()
            },
        );
    }
}
