//! Deterministic fault injection for open-membership swarms.
//!
//! A [`FaultPlan`] describes every adversity a session can suffer:
//!
//! * **crashes** — abrupt departures that sever a peer's overlay row with
//!   no lifecycle cleanup (no completion record, no graceful leave draw);
//! * **transfer loss** — a per-delivery probability that an individual
//!   flow vanishes in transit (the sender still spends the capacity, the
//!   recipient receives nothing);
//! * **tracker outages** — round windows during which announces fail, so
//!   arriving peers queue and retry with exponential backoff;
//! * **partitions** — round windows during which the overlay is cut into
//!   two halves (even/odd arena slots); every cross-half edge is severed
//!   at the window start and the tracker refuses cross-half wiring until
//!   the window closes ("heals").
//!
//! # Determinism contract
//!
//! Every fault decision draws from its own ChaCha8 stream keyed by
//! `(fault_seed, round, fault_event)` via `fault_rng` under a domain
//! separator distinct from the session and parallel-round families. No
//! fault stream is ever touched by the regular session or swarm passes,
//! and a plan for which [`FaultPlan::is_inert`] holds consumes **zero**
//! randomness — sessions carrying an inert plan are bit-identical to
//! sessions built without one, serially and at any thread count.
//!
//! Transfer-loss draws use the same keyed family with the edge's
//! recipient-side arena slot as the event id (tagged with
//! `LOSS_EVENT_BIT` so it can never collide with the session-level
//! fault events), which makes loss schedules independent of worker
//! partitioning in the parallel engine.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Domain separator of the fault-event stream family (`b"faults!_"`),
/// distinct from the session (`b"session_"`) and parallel-round
/// (`b"parallel"`) separators.
const FAULT_STREAM_DOMAIN: u64 = 0x6661_756c_7473_215f;

/// Fault event id of the per-round crash pass.
pub(crate) const CRASH_EVENT: u64 = 0;
/// Fault event id of the per-round overlay-repair pass.
pub(crate) const REPAIR_EVENT: u64 = 1;
/// Tag bit of transfer-loss events: the event id is
/// `LOSS_EVENT_BIT | recipient_edge_slot`, disjoint from the small
/// session-level event ids by construction.
pub(crate) const LOSS_EVENT_BIT: u64 = 1 << 31;

/// The deterministic ChaCha8 stream of one fault event: seeded from
/// `fault_seed` under the fault domain separator, stream-indexed by
/// `(round, event)`. Creating the generator is cheap and draws nothing.
#[must_use]
pub(crate) fn fault_rng(fault_seed: u64, round: u64, event: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(fault_seed ^ FAULT_STREAM_DOMAIN);
    rng.set_stream((round << 32) | event);
    rng
}

/// One deterministic loss draw for the delivery arriving at recipient-side
/// edge slot `edge` in `round`. Used by both the serial and the parallel
/// delivery paths, so loss schedules are thread-count independent.
#[must_use]
pub(crate) fn loss_drawn(fault_seed: u64, round: u64, edge: usize, prob: f64) -> bool {
    use rand::Rng;
    fault_rng(fault_seed, round, LOSS_EVENT_BIT | edge as u64).gen_bool(prob)
}

/// A half-open round window `[start, start + rounds)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First round the window covers.
    pub start: u64,
    /// Window length in rounds (validation requires ≥ 1).
    pub rounds: u64,
}

impl FaultWindow {
    /// Whether `round` falls inside the window.
    #[must_use]
    pub fn contains(&self, round: u64) -> bool {
        round >= self.start && round < self.end()
    }

    /// One past the last covered round.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.rounds)
    }
}

/// A deterministic fault schedule for one session (see the module docs
/// for the semantics of each axis and the determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-round crash probability of every present non-publisher peer.
    pub crash_prob: f64,
    /// Per-delivery transfer-loss probability.
    pub loss_prob: f64,
    /// Tracker outage windows (announces fail while one is active).
    pub outages: Vec<FaultWindow>,
    /// Overlay partition windows (even/odd halves, healed at window end).
    pub partitions: Vec<FaultWindow>,
    /// Seed of the fault stream family, independent of the session seed.
    pub fault_seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The zero-fault plan: no crashes, no loss, no outages, no
    /// partitions. Sessions carrying it behave bit-identically to
    /// sessions built without a plan.
    #[must_use]
    pub fn none() -> Self {
        Self {
            crash_prob: 0.0,
            loss_prob: 0.0,
            outages: Vec::new(),
            partitions: Vec::new(),
            fault_seed: 0,
        }
    }

    /// Whether the plan injects nothing (every axis disabled). Inert
    /// plans consume no randomness and leave session output untouched.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash_prob == 0.0
            && self.loss_prob == 0.0
            && self.outages.is_empty()
            && self.partitions.is_empty()
    }

    /// Validates the plan: probabilities must be finite and in `[0, 1]`,
    /// every window must cover at least one round.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("loss_prob", self.loss_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        for (name, windows) in [("outages", &self.outages), ("partitions", &self.partitions)] {
            if let Some(w) = windows.iter().find(|w| w.rounds == 0) {
                return Err(format!(
                    "{name} window starting at round {} covers zero rounds",
                    w.start
                ));
            }
        }
        Ok(())
    }

    /// Whether the tracker is down in `round`.
    #[must_use]
    pub fn outage_active(&self, round: u64) -> bool {
        self.outages.iter().any(|w| w.contains(round))
    }

    /// Whether a partition is active in `round` (cross-half wiring is
    /// refused and cross-half edges stay severed).
    #[must_use]
    pub fn partition_active(&self, round: u64) -> bool {
        self.partitions.iter().any(|w| w.contains(round))
    }

    /// Whether a partition window begins exactly at `round` (the moment
    /// its cross-half edges are severed).
    #[must_use]
    pub fn partition_starts_at(&self, round: u64) -> bool {
        self.partitions
            .iter()
            .any(|w| w.start == round && w.rounds > 0)
    }

    /// Whether the session should run its reconnect-to-target-degree
    /// repair pass: only plans that damage the overlay (crashes or
    /// partitions) enable it, so loss/outage-only plans keep the wiring
    /// history of the fault-free session.
    #[must_use]
    pub fn repair_enabled(&self) -> bool {
        self.crash_prob > 0.0 || !self.partitions.is_empty()
    }

    /// Whether arena slots `p` and `q` fall on opposite partition halves
    /// (even vs odd slot index).
    #[must_use]
    pub fn cross_partition(p: usize, q: usize) -> bool {
        (p ^ q) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn none_is_inert_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert!(plan.validate().is_ok());
        assert!(!plan.repair_enabled());
        assert!(!plan.outage_active(0) && !plan.partition_active(0));
    }

    #[test]
    fn validation_rejects_bad_probabilities_and_empty_windows() {
        let mut plan = FaultPlan::none();
        plan.crash_prob = 1.5;
        assert!(plan.validate().unwrap_err().contains("crash_prob"));
        plan.crash_prob = f64::NAN;
        assert!(plan.validate().is_err());
        plan.crash_prob = 0.0;
        plan.loss_prob = -0.1;
        assert!(plan.validate().unwrap_err().contains("loss_prob"));
        plan.loss_prob = 0.0;
        plan.outages.push(FaultWindow {
            start: 5,
            rounds: 0,
        });
        assert!(plan.validate().unwrap_err().contains("outages"));
        plan.outages.clear();
        plan.partitions.push(FaultWindow {
            start: 0,
            rounds: 0,
        });
        assert!(plan.validate().unwrap_err().contains("partitions"));
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow {
            start: 10,
            rounds: 3,
        };
        assert!(!w.contains(9));
        assert!(w.contains(10) && w.contains(12));
        assert!(!w.contains(13));
        assert_eq!(w.end(), 13);
        let plan = FaultPlan {
            outages: vec![w],
            partitions: vec![FaultWindow {
                start: 20,
                rounds: 1,
            }],
            ..FaultPlan::none()
        };
        assert!(plan.outage_active(12) && !plan.outage_active(13));
        assert!(plan.partition_starts_at(20) && !plan.partition_starts_at(21));
        assert!(plan.partition_active(20) && !plan.partition_active(21));
    }

    #[test]
    fn fault_streams_are_keyed_by_round_and_event() {
        let mut a = fault_rng(7, 3, CRASH_EVENT);
        let mut b = fault_rng(7, 3, CRASH_EVENT);
        assert_eq!(a.next_u64(), b.next_u64(), "same key, same stream");
        let mut c = fault_rng(7, 3, REPAIR_EVENT);
        let mut d = fault_rng(7, 4, CRASH_EVENT);
        let mut e = fault_rng(8, 3, CRASH_EVENT);
        let base = fault_rng(7, 3, CRASH_EVENT).next_u64();
        assert_ne!(base, c.next_u64(), "event separates streams");
        assert_ne!(base, d.next_u64(), "round separates streams");
        assert_ne!(base, e.next_u64(), "seed separates streams");
    }

    #[test]
    fn loss_draws_are_deterministic_and_edge_keyed() {
        let hits_a: Vec<bool> = (0..64).map(|e| loss_drawn(9, 5, e, 0.5)).collect();
        let hits_b: Vec<bool> = (0..64).map(|e| loss_drawn(9, 5, e, 0.5)).collect();
        assert_eq!(hits_a, hits_b);
        assert!(hits_a.iter().any(|&h| h) && hits_a.iter().any(|&h| !h));
        assert!((0..64).all(|e| !loss_drawn(9, 5, e, 0.0)));
        assert!((0..64).all(|e| loss_drawn(9, 5, e, 1.0)));
    }

    #[test]
    fn cross_partition_is_slot_parity() {
        assert!(FaultPlan::cross_partition(0, 1));
        assert!(!FaultPlan::cross_partition(0, 2));
        assert!(!FaultPlan::cross_partition(3, 7));
        assert!(FaultPlan::cross_partition(4, 9));
    }
}
