//! Seed-faithful reference implementation of the swarm round loop.
//!
//! [`RefSwarm`] is the pre-data-oriented engine: one heap-allocated
//! [`RefPeer`] per peer, per-round `Vec` construction inside the rechoke
//! loop, and linear `position()` scans to locate reverse edges. It exists
//! for the same two reasons as `strat_core::reference` and is **not**
//! meant for production use:
//!
//! 1. **Differential testing** — `tests/differential.rs` asserts the
//!    optimized [`Swarm`](crate::Swarm) is bit-identical to this engine
//!    (same totals, same unchoke sets, same piece sets) for the serial
//!    round, and that [`RefSwarm::round_indexed`] matches
//!    [`Swarm::run_rounds_parallel`](crate::Swarm::run_rounds_parallel)
//!    for every thread count;
//! 2. **Benchmarking** — the `swarm_ref/*` groups in `strat-bench`
//!    measure this engine against the optimized one, keeping the speedup
//!    a number rather than a claim.
//!
//! RNG discipline: [`RefSwarm::round`] consumes the shared ChaCha stream
//! in exactly the same order and quantity as [`Swarm::round`](crate::Swarm::round)
//! (construction draws, per-seed shuffles, optimistic rotations), so both
//! engines stay in lockstep on a shared seed for their entire run.
//! [`RefSwarm::round_indexed`] instead derives one stream per
//! `(round, peer)` pair — the parallel-round semantics — via the same
//! `peer_round_rng` helper the optimized engine uses.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use strat_graph::{generators, NodeId};

use crate::swarm::peer_round_rng;
use crate::{PeerBehavior, PeerId, PieceSet, SwarmConfig};

/// The historical one-scan rarest-first prefetch: the first `want` picks
/// among the pieces `other` has and `q` lacks, sorted in pick order and
/// packed `(availability << 32) | piece`. This is exactly the sequence
/// `want` successive [`PieceSet::rarest_missing_from`] + insert steps
/// produce: inserting a pick removes it from the candidate set and bumps
/// only its *own* availability, so the remaining candidates'
/// `(availability, index)` keys never change.
///
/// Retained as the differential oracle for the optimized engine's
/// incrementally ordered availability index (`crate::avail`); the
/// per-pick scan used by the live [`RefSwarm`] paths is
/// [`PieceSet::rarest_missing_from`].
#[cfg(test)]
pub(crate) fn batch_rarest_picks_scan(
    q: &PieceSet,
    other: &PieceSet,
    availability: &[u32],
    want: usize,
    out: &mut Vec<u64>,
) {
    out.clear();
    if want == 0 {
        return;
    }
    for i in q.missing_from(other) {
        let key = (u64::from(availability[i]) << 32) | i as u64;
        if out.len() < want {
            let pos = out.partition_point(|&k| k < key);
            out.insert(pos, key);
        } else if key < *out.last().expect("non-empty at capacity") {
            let pos = out.partition_point(|&k| k < key);
            out.pop();
            out.insert(pos, key);
        }
    }
}

/// Per-peer simulation state of the reference engine (the original
/// array-of-structs layout).
#[derive(Debug, Clone)]
pub struct RefPeer {
    /// Upload capacity in kbps.
    upload_kbps: f64,
    /// Choking behavior.
    behavior: PeerBehavior,
    /// Pieces currently held.
    pieces: PieceSet,
    /// Whether this peer started as a seed.
    original_seed: bool,
    /// Round at which the file completed (leechers only).
    completed_round: Option<u64>,
    /// kbit received from each neighbour during the previous round.
    received_prev: Vec<f64>,
    /// kbit received from each neighbour during the current round.
    received_curr: Vec<f64>,
    /// Download credit (kbit) accumulated towards the next piece, per
    /// neighbour.
    credit: Vec<f64>,
    /// Neighbour positions currently TFT-unchoked.
    tft_unchoked: Vec<usize>,
    /// Neighbour position currently optimistically unchoked.
    optimistic: Option<usize>,
    /// Cumulative kbit uploaded / downloaded.
    total_up: f64,
    total_down: f64,
    /// Cumulative kbit uploaded / downloaded on reciprocation (TFT) slots.
    tft_up: f64,
    tft_down: f64,
}

impl RefPeer {
    /// Upload capacity in kbps.
    #[must_use]
    pub fn upload_kbps(&self) -> f64 {
        self.upload_kbps
    }

    /// The peer's choking behavior.
    #[must_use]
    pub fn behavior(&self) -> PeerBehavior {
        self.behavior
    }

    /// The pieces currently held.
    #[must_use]
    pub fn pieces(&self) -> &PieceSet {
        &self.pieces
    }

    /// Whether this peer started as a seed.
    #[must_use]
    pub fn is_original_seed(&self) -> bool {
        self.original_seed
    }

    /// Round at which a leecher completed the file.
    #[must_use]
    pub fn completed_round(&self) -> Option<u64> {
        self.completed_round
    }

    /// Cumulative kilobits uploaded.
    #[must_use]
    pub fn total_uploaded(&self) -> f64 {
        self.total_up
    }

    /// Cumulative kilobits downloaded.
    #[must_use]
    pub fn total_downloaded(&self) -> f64 {
        self.total_down
    }

    /// Kilobits uploaded through TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_uploaded(&self) -> f64 {
        self.tft_up
    }

    /// Kilobits received from senders' TFT (non-optimistic) slots.
    #[must_use]
    pub fn tft_downloaded(&self) -> f64 {
        self.tft_down
    }
}

/// The seed-faithful swarm engine (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct RefSwarm {
    config: SwarmConfig,
    rng: ChaCha8Rng,
    /// Overlay adjacency: `neighbors[p]` lists the peers `p` knows.
    neighbors: Vec<Vec<PeerId>>,
    peers: Vec<RefPeer>,
    /// Global piece availability (holder counts), kept incrementally.
    availability: Vec<u32>,
    round: u64,
}

impl RefSwarm {
    /// Builds a reference swarm; identical construction (same RNG
    /// consumption, same initial state) as [`Swarm::new`](crate::Swarm::new).
    ///
    /// # Panics
    ///
    /// Panics if `upload_kbps.len() != leechers + seeds` or any capacity is
    /// non-positive.
    #[must_use]
    pub fn new(config: SwarmConfig, upload_kbps: &[f64]) -> Self {
        let behaviors = vec![PeerBehavior::Compliant; config.leechers + config.seeds];
        Self::with_behaviors(config, upload_kbps, &behaviors)
    }

    /// Builds a reference swarm with an explicit behavior mix; identical
    /// construction as [`Swarm::with_behaviors`](crate::Swarm::with_behaviors).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RefSwarm::new`], or if
    /// `behaviors.len()` disagrees with the peer count.
    #[must_use]
    pub fn with_behaviors(
        config: SwarmConfig,
        upload_kbps: &[f64],
        behaviors: &[PeerBehavior],
    ) -> Self {
        let n = config.leechers + config.seeds;
        assert_eq!(upload_kbps.len(), n, "need one upload capacity per peer");
        assert_eq!(behaviors.len(), n, "need one behavior per peer");
        assert!(
            upload_kbps.iter().all(|&u| u.is_finite() && u > 0.0),
            "upload capacities must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Tracker overlay: Erdős–Rényi with the requested expected degree.
        let overlay = generators::erdos_renyi_mean_degree(n, config.mean_neighbors, &mut rng);
        let neighbors: Vec<Vec<PeerId>> = (0..n)
            .map(|p| {
                overlay
                    .neighbors(NodeId::new(p))
                    .iter()
                    .map(|v| v.index())
                    .collect()
            })
            .collect();

        let mut peers: Vec<RefPeer> = (0..n)
            .map(|p| {
                let is_seed = p >= config.leechers;
                let pieces = if is_seed {
                    PieceSet::full(config.piece_count)
                } else {
                    let mut set = PieceSet::new(config.piece_count);
                    for i in 0..config.piece_count {
                        if rng.gen_bool(config.initial_completion) {
                            set.insert(i);
                        }
                    }
                    set
                };
                let deg = neighbors[p].len();
                RefPeer {
                    upload_kbps: upload_kbps[p],
                    behavior: behaviors[p],
                    pieces,
                    original_seed: is_seed,
                    completed_round: None,
                    received_prev: vec![0.0; deg],
                    received_curr: vec![0.0; deg],
                    credit: vec![0.0; deg],
                    tft_unchoked: Vec::new(),
                    optimistic: None,
                    total_up: 0.0,
                    total_down: 0.0,
                    tft_up: 0.0,
                    tft_down: 0.0,
                }
            })
            .collect();
        // A leecher may complete by lucky initialization.
        for peer in &mut peers {
            if !peer.original_seed && peer.pieces.is_complete() {
                peer.completed_round = Some(0);
            }
        }

        let mut availability = vec![0u32; config.piece_count];
        for peer in &peers {
            for (i, a) in availability.iter_mut().enumerate() {
                *a += u32::from(peer.pieces.contains(i));
            }
        }
        Self {
            config,
            rng,
            neighbors,
            peers,
            availability,
            round: 0,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// Number of peers.
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Read access to peer `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn peer(&self, p: PeerId) -> &RefPeer {
        &self.peers[p]
    }

    /// Rounds simulated so far.
    #[must_use]
    pub fn round_count(&self) -> u64 {
        self.round
    }

    /// Global availability (holder count) per piece.
    #[must_use]
    pub fn availability(&self) -> &[u32] {
        &self.availability
    }

    /// The peers `p` is currently TFT-unchoking.
    #[must_use]
    pub fn tft_unchoked(&self, p: PeerId) -> Vec<PeerId> {
        self.peers[p]
            .tft_unchoked
            .iter()
            .map(|&k| self.neighbors[p][k])
            .collect()
    }

    /// The peer `p` is currently optimistically unchoking, if any.
    #[must_use]
    pub fn optimistic_unchoked(&self, p: PeerId) -> Option<PeerId> {
        self.peers[p].optimistic.map(|k| self.neighbors[p][k])
    }

    /// Simulates one round (rechoke, then transfer) with the shared serial
    /// RNG — the semantics [`Swarm::round`](crate::Swarm::round) must
    /// reproduce bit-for-bit.
    pub fn round(&mut self) {
        self.rechoke();
        self.transfer();
        self.round += 1;
        for peer in &mut self.peers {
            core::mem::swap(&mut peer.received_prev, &mut peer.received_curr);
            peer.received_curr.iter_mut().for_each(|r| *r = 0.0);
        }
    }

    /// Runs `rounds` serial rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Whether `q` is interested in `p`'s content.
    fn interested(&self, q: PeerId, p: PeerId) -> bool {
        if self.config.fluid_content {
            return q != p && !self.peers[q].original_seed;
        }
        self.peers[q].pieces.is_interested_in(&self.peers[p].pieces)
    }

    /// Whether `p` rechokes like a seed (no reciprocation signal).
    fn acts_as_seed(&self, p: PeerId) -> bool {
        if self.peers[p].behavior.ignores_reciprocation() {
            return true;
        }
        if self.config.fluid_content {
            self.peers[p].original_seed
        } else {
            self.peers[p].pieces.is_complete()
        }
    }

    /// Whether `p` currently uploads at all.
    fn uploads(&self, p: PeerId) -> bool {
        let peer = &self.peers[p];
        if !peer.behavior.uploads() {
            return false;
        }
        if !self.config.fluid_content && peer.pieces.is_complete() && !peer.original_seed {
            self.config.seed_after_completion
        } else {
            true
        }
    }

    fn rechoke(&mut self) {
        let n = self.peers.len();
        let rotate_optimistic = self
            .round
            .is_multiple_of(u64::from(self.config.optimistic_period));
        for p in 0..n {
            if !self.uploads(p) {
                self.peers[p].tft_unchoked.clear();
                self.peers[p].optimistic = None;
                continue;
            }
            // Interested candidate neighbour positions.
            let candidates: Vec<usize> = (0..self.neighbors[p].len())
                .filter(|&k| self.interested(self.neighbors[p][k], p))
                .collect();

            let tft: Vec<usize> = if self.acts_as_seed(p) {
                // Seeds have no reciprocation signal: random rotation.
                let mut cands = candidates.clone();
                cands.shuffle(&mut self.rng);
                cands.truncate(self.config.tft_slots);
                cands
            } else {
                // Tit-for-Tat: top receivers from the last round.
                let mut ranked = candidates.clone();
                ranked.sort_by(|&a, &b| {
                    self.peers[p].received_prev[b].total_cmp(&self.peers[p].received_prev[a])
                });
                ranked.truncate(self.config.tft_slots);
                ranked
            };

            // Optimistic slot: rotate periodically among interested,
            // non-TFT-unchoked neighbours; drop it if no longer interested.
            let mut optimistic = self.peers[p].optimistic;
            if let Some(k) = optimistic {
                let still_valid = candidates.contains(&k) && !tft.contains(&k);
                if !still_valid {
                    optimistic = None;
                }
            }
            if self.config.optimistic_slots > 0 && (rotate_optimistic || optimistic.is_none()) {
                let pool: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|k| !tft.contains(k))
                    .collect();
                optimistic = if pool.is_empty() {
                    None
                } else {
                    Some(pool[self.rng.gen_range(0..pool.len())])
                };
            }
            self.peers[p].tft_unchoked = tft;
            self.peers[p].optimistic = optimistic;
        }
    }

    fn transfer(&mut self) {
        let n = self.peers.len();
        let round_seconds = self.config.round_seconds;
        for p in 0..n {
            if !self.uploads(p) {
                continue;
            }
            // Active flows: unchoked positions whose peer is (still)
            // interested in p.
            let mut targets: Vec<(usize, bool)> = self.peers[p]
                .tft_unchoked
                .iter()
                .map(|&k| (k, true))
                .collect();
            if let Some(k) = self.peers[p].optimistic {
                if !targets.iter().any(|&(t, _)| t == k) {
                    targets.push((k, false));
                }
            }
            targets.retain(|&(k, _)| self.interested(self.neighbors[p][k], p));
            if targets.is_empty() {
                continue;
            }
            let share = self.peers[p].upload_kbps * round_seconds / targets.len() as f64;
            for &(k, is_tft) in &targets {
                let q = self.neighbors[p][k];
                self.deliver(p, q, share, is_tft);
            }
        }
    }

    /// Delivers `kbit` from `p` to `q`, converting credit into rarest-first
    /// pieces.
    fn deliver(&mut self, p: PeerId, q: PeerId, kbit: f64, is_tft: bool) {
        let pos_of_p = self.neighbors[q]
            .iter()
            .position(|&v| v == p)
            .expect("overlay adjacency is symmetric");
        self.peers[p].total_up += kbit;
        self.peers[q].total_down += kbit;
        if is_tft {
            self.peers[p].tft_up += kbit;
            self.peers[q].tft_down += kbit;
        }
        self.peers[q].received_curr[pos_of_p] += kbit;
        if self.config.fluid_content {
            return; // rates only; no piece bookkeeping in fluid mode
        }
        self.peers[q].credit[pos_of_p] += kbit;
        while self.peers[q].credit[pos_of_p] >= self.config.piece_size_kbit {
            let pick = {
                let (qp, pp) = (&self.peers[q].pieces, &self.peers[p].pieces);
                qp.rarest_missing_from(pp, &self.availability)
            };
            let Some(piece) = pick else {
                // Nothing useful left from p this round; credit waits in
                // case p acquires new pieces.
                break;
            };
            self.peers[q].credit[pos_of_p] -= self.config.piece_size_kbit;
            self.peers[q].pieces.insert(piece);
            self.availability[piece] += 1;
            if self.peers[q].pieces.is_complete() && self.peers[q].completed_round.is_none() {
                self.peers[q].completed_round = Some(self.round + 1);
            }
        }
    }

    /// Simulates one round under the **indexed-stream** semantics — the
    /// serial oracle for
    /// [`Swarm::run_rounds_parallel`](crate::Swarm::run_rounds_parallel).
    ///
    /// Differences from [`RefSwarm::round`], chosen so every peer's work
    /// is independent of every other peer's within a phase:
    ///
    /// * per-peer randomness comes from an independent ChaCha stream keyed
    ///   by `(config.seed, round, peer)` instead of the shared serial RNG;
    /// * upload/seed-state flags, interest, piece sets and availability
    ///   are all read from the **start-of-round** state: a peer completing
    ///   mid-round affects other peers only from the next round on;
    /// * delivery is recipient-major (each recipient drains its incoming
    ///   flows in ascending neighbour-slot order) rather than sender-major.
    pub fn round_indexed(&mut self) {
        let n = self.peers.len();
        let fluid = self.config.fluid_content;
        let rotate_optimistic = self
            .round
            .is_multiple_of(u64::from(self.config.optimistic_period));

        // Start-of-round snapshots.
        let uploads_now: Vec<bool> = (0..n).map(|p| self.uploads(p)).collect();
        let acts_seed: Vec<bool> = (0..n).map(|p| self.acts_as_seed(p)).collect();
        let original_seed: Vec<bool> = self.peers.iter().map(|x| x.original_seed).collect();
        let pieces_prev: Vec<PieceSet> = self.peers.iter().map(|x| x.pieces.clone()).collect();
        let avail_prev = self.availability.clone();
        let interested = |q: PeerId, p: PeerId| -> bool {
            if fluid {
                q != p && !original_seed[q]
            } else {
                pieces_prev[q].is_interested_in(&pieces_prev[p])
            }
        };

        // Phase 1: rechoke, one independent RNG stream per peer.
        for p in 0..n {
            if !uploads_now[p] {
                self.peers[p].tft_unchoked.clear();
                self.peers[p].optimistic = None;
                continue;
            }
            let mut rng = peer_round_rng(self.config.seed, self.round, p);
            let candidates: Vec<usize> = (0..self.neighbors[p].len())
                .filter(|&k| interested(self.neighbors[p][k], p))
                .collect();
            let tft: Vec<usize> = if acts_seed[p] {
                let mut cands = candidates.clone();
                cands.shuffle(&mut rng);
                cands.truncate(self.config.tft_slots);
                cands
            } else {
                let mut ranked = candidates.clone();
                ranked.sort_by(|&a, &b| {
                    self.peers[p].received_prev[b].total_cmp(&self.peers[p].received_prev[a])
                });
                ranked.truncate(self.config.tft_slots);
                ranked
            };
            let mut optimistic = self.peers[p].optimistic;
            if let Some(k) = optimistic {
                let still_valid = candidates.contains(&k) && !tft.contains(&k);
                if !still_valid {
                    optimistic = None;
                }
            }
            if self.config.optimistic_slots > 0 && (rotate_optimistic || optimistic.is_none()) {
                let pool: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|k| !tft.contains(k))
                    .collect();
                optimistic = if pool.is_empty() {
                    None
                } else {
                    Some(pool[rng.gen_range(0..pool.len())])
                };
            }
            self.peers[p].tft_unchoked = tft;
            self.peers[p].optimistic = optimistic;
        }

        // Phase 2: sender flows — retained targets and the per-target
        // share, all from start-of-round interest.
        let mut active: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        let mut share = vec![0.0f64; n];
        for p in 0..n {
            if !uploads_now[p] {
                continue;
            }
            let mut targets: Vec<(usize, bool)> = self.peers[p]
                .tft_unchoked
                .iter()
                .map(|&k| (k, true))
                .collect();
            if let Some(k) = self.peers[p].optimistic {
                if !targets.iter().any(|&(t, _)| t == k) {
                    targets.push((k, false));
                }
            }
            targets.retain(|&(k, _)| interested(self.neighbors[p][k], p));
            if targets.is_empty() {
                continue;
            }
            share[p] = self.peers[p].upload_kbps * self.config.round_seconds / targets.len() as f64;
            for &(_, is_tft) in &targets {
                self.peers[p].total_up += share[p];
                if is_tft {
                    self.peers[p].tft_up += share[p];
                }
            }
            active[p] = targets;
        }

        // Phase 3: recipient-major delivery in ascending slot order,
        // rarest-first picks against the start-of-round snapshot.
        for q in 0..n {
            for kq in 0..self.neighbors[q].len() {
                let p = self.neighbors[q][kq];
                if active[p].is_empty() {
                    continue;
                }
                let pos_of_q = self.neighbors[p]
                    .iter()
                    .position(|&v| v == q)
                    .expect("overlay adjacency is symmetric");
                let Some(&(_, is_tft)) = active[p].iter().find(|&&(k, _)| k == pos_of_q) else {
                    continue;
                };
                let kbit = share[p];
                self.peers[q].total_down += kbit;
                if is_tft {
                    self.peers[q].tft_down += kbit;
                }
                self.peers[q].received_curr[kq] += kbit;
                if fluid {
                    continue;
                }
                self.peers[q].credit[kq] += kbit;
                while self.peers[q].credit[kq] >= self.config.piece_size_kbit {
                    let pick = self.peers[q]
                        .pieces
                        .rarest_missing_from(&pieces_prev[p], &avail_prev);
                    let Some(piece) = pick else {
                        break;
                    };
                    self.peers[q].credit[kq] -= self.config.piece_size_kbit;
                    self.peers[q].pieces.insert(piece);
                    self.availability[piece] += 1;
                    if self.peers[q].pieces.is_complete() && self.peers[q].completed_round.is_none()
                    {
                        self.peers[q].completed_round = Some(self.round + 1);
                    }
                }
            }
        }

        self.round += 1;
        for peer in &mut self.peers {
            core::mem::swap(&mut peer.received_prev, &mut peer.received_curr);
            peer.received_curr.iter_mut().for_each(|r| *r = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(leechers: usize, seeds: usize, seed: u64) -> RefSwarm {
        let n = leechers + seeds;
        let cfg = SwarmConfig::builder()
            .leechers(leechers)
            .seeds(seeds)
            .piece_count(32)
            .piece_size_kbit(200.0)
            .seed(seed)
            .build();
        let uploads: Vec<f64> = (0..n).map(|i| 200.0 + 25.0 * i as f64).collect();
        RefSwarm::new(cfg, &uploads)
    }

    #[test]
    fn serial_round_conserves_traffic() {
        let mut swarm = small(18, 2, 11);
        swarm.run_rounds(20);
        let up: f64 = (0..20).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..20).map(|p| swarm.peer(p).total_downloaded()).sum();
        assert!(up > 0.0 && (up - down).abs() < 1e-6);
    }

    #[test]
    fn indexed_round_conserves_traffic_and_availability() {
        let mut swarm = small(18, 2, 12);
        for _ in 0..20 {
            swarm.round_indexed();
        }
        let up: f64 = (0..20).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..20).map(|p| swarm.peer(p).total_downloaded()).sum();
        assert!(up > 0.0 && (up - down).abs() < 1e-6);
        for i in 0..swarm.config().piece_count {
            let holders = (0..20)
                .filter(|&p| swarm.peer(p).pieces().contains(i))
                .count() as u32;
            assert_eq!(holders, swarm.availability()[i], "piece {i}");
        }
    }

    #[test]
    fn indexed_round_is_deterministic() {
        let mk = || {
            let mut swarm = small(15, 1, 9);
            for _ in 0..12 {
                swarm.round_indexed();
            }
            (0..16)
                .map(|p| swarm.peer(p).total_downloaded())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
