//! Incrementally maintained piece-availability index.
//!
//! The engine's rarest-first pick wants pieces in ascending
//! `(availability, index)` order. The historical implementation rescanned
//! the candidate bitset per delivery ([`crate::reference`] retains it);
//! this structure is a **bucketed counting histogram**: a permutation of
//! the pieces kept contiguous by holder count (bucket `c` holds the
//! pieces with exactly `c` present holders), with a ±1 availability
//! change repositioned by one *swap against the bucket boundary* —
//! strictly `O(1)`, no matter how the counts are distributed.
//!
//! Buckets are internally **unordered**; picks stay exact anyway because
//! the scan walks the permutation (buckets appear in ascending-count
//! order) and emits each count segment's candidates through a bounded
//! insertion buffer, i.e. in ascending piece index within the segment.
//! The emitted sequence is therefore identical to sorting by
//! `(count, index)` — and identical to the reference engine's per-pick
//! scans, which the differential suites in `crates/bittorrent/tests/`
//! pin bit-for-bit.
//!
//! The `O(1)` update is exactly the operation open membership needs: a
//! joining peer adds one holder per piece it brings, a leaving peer
//! removes one per piece it takes away ([`crate::Swarm::arrive`] /
//! [`crate::Swarm::depart`]).

use crate::PieceSet;

/// Piece availability (present-holder counts) with a bucket-contiguous
/// rarest-first permutation (see the [module docs](self)).
#[derive(Debug, Default)]
pub(crate) struct AvailIndex {
    /// Holder count per piece.
    counts: Vec<u32>,
    /// Permutation of the pieces, contiguous by ascending count; within a
    /// bucket the order is arbitrary.
    order: Vec<u32>,
    /// Inverse of `order`: `pos[piece]` locates the piece in `order`.
    pos: Vec<u32>,
    /// `bucket_start[c]` = first `order` slot whose count is ≥ `c`
    /// (equivalently: number of pieces with count < `c`). Extended lazily
    /// as counts grow; trailing entries equal `order.len()`.
    bucket_start: Vec<u32>,
}

/// Manual so `clone_from` reuses the destination's buffers — the parallel
/// round loop refreshes its start-of-round snapshot once per round and
/// must stay allocation-free in the steady state.
impl Clone for AvailIndex {
    fn clone(&self) -> Self {
        Self {
            counts: self.counts.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
            bucket_start: self.bucket_start.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.counts.clone_from(&src.counts);
        self.order.clone_from(&src.order);
        self.pos.clone_from(&src.pos);
        self.bucket_start.clone_from(&src.bucket_start);
    }
}

impl AvailIndex {
    /// Builds the index from raw holder counts.
    pub(crate) fn from_counts(counts: Vec<u32>) -> Self {
        let n = counts.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (counts[i as usize], i));
        let mut pos = vec![0u32; n];
        for (j, &i) in order.iter().enumerate() {
            pos[i as usize] = j as u32;
        }
        let max = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut bucket_start = vec![0u32; max + 2];
        for &c in &counts {
            bucket_start[c as usize + 1] += 1;
        }
        for c in 0..max + 1 {
            bucket_start[c + 1] += bucket_start[c];
        }
        Self {
            counts,
            order,
            pos,
            bucket_start,
        }
    }

    /// Holder count per piece.
    #[inline]
    pub(crate) fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Ensures `bucket_start[c]` is addressable.
    #[inline]
    fn ensure_bucket(&mut self, c: usize) {
        if self.bucket_start.len() <= c {
            let end = self.order.len() as u32;
            self.bucket_start.resize(c + 1, end);
        }
    }

    /// Swaps the permutation entries at `a` and `b`.
    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        if a != b {
            self.order.swap(a, b);
            self.pos[self.order[a] as usize] = a as u32;
            self.pos[self.order[b] as usize] = b as u32;
        }
    }

    /// Adds one holder of `piece`: one swap against the end of its bucket,
    /// then the boundary moves — `O(1)`.
    #[inline]
    pub(crate) fn increment(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        self.counts[piece] = (c + 1) as u32;
        self.ensure_bucket(c + 2);
        let last = self.bucket_start[c + 1] as usize - 1;
        self.swap_slots(self.pos[piece] as usize, last);
        self.bucket_start[c + 1] = last as u32;
    }

    /// Removes one holder of `piece`: one swap against the start of its
    /// bucket, then the boundary moves — `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the count is already zero.
    #[inline]
    pub(crate) fn decrement(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        debug_assert!(c > 0, "piece {piece} has no holders");
        self.counts[piece] = (c - 1) as u32;
        let first = self.bucket_start[c] as usize;
        self.swap_slots(self.pos[piece] as usize, first);
        self.bucket_start[c] = (first + 1) as u32;
    }

    /// The first `want` rarest-first picks among the pieces `other` has
    /// and `q` lacks, in pick order, packed `(count << 32) | piece` — the
    /// exact sequence `want` successive reference picks
    /// ([`PieceSet::rarest_missing_from`] + insert) produce, because
    /// inserting a pick bumps only its *own* availability and the
    /// remaining candidates' `(count, index)` keys never change.
    ///
    /// Two equivalent strategies, chosen by candidate density **at the
    /// rare end**: for a *seed* sender feeding a recipient that still
    /// lacks a sizable fraction of the file — the dominant transfer of
    /// flash crowds and churning swarms — every rare piece is a
    /// candidate, so the permutation is walked front-to-back (count
    /// segments ascend; each segment's candidates emit index-sorted
    /// through the insertion buffer, and the walk stops at the first
    /// segment boundary with the buffer full; an `O(1)` probe of the
    /// rarest bucket's size keeps homogeneous-availability states off
    /// this path, where whole-segment walks would not pay). Otherwise —
    /// partial senders, whose holdings are exactly *not* the rare
    /// prefix, or nearly-complete recipients — the candidate bitset is
    /// scanned word-parallel instead, exactly like the retained
    /// reference scan.
    #[inline]
    pub(crate) fn batch_picks(
        &self,
        q: &PieceSet,
        other: &PieceSet,
        want: usize,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        if want == 0 {
            return;
        }
        let pieces = q.piece_count();
        let missing = pieces - q.count();
        // O(1) probe of the rarest bucket's size: homogeneous availability
        // (a few giant segments) forces the walk through whole segments
        // before it may stop, so the bitset scan wins there.
        let spread = pieces > 0 && {
            let c0 = self.counts[self.order[0] as usize] as usize;
            let first_bucket = self.bucket_start[c0 + 1] - self.bucket_start[c0];
            (first_bucket as usize) * 8 <= pieces
        };
        if spread && missing * 8 >= pieces && other.is_complete() {
            // Ordered walk over the bucket-contiguous permutation.
            let mut segment_count = u32::MAX;
            let mut segment_base = 0usize; // finalized picks before this segment
            for &piece in &self.order {
                let i = piece as usize;
                let c = self.counts[i];
                if c != segment_count {
                    // A segment boundary: earlier segments' picks are final.
                    if out.len() == want {
                        return;
                    }
                    segment_count = c;
                    segment_base = out.len();
                }
                // The walk is gated on a complete sender, so candidacy is
                // just "q lacks the piece".
                debug_assert!(other.contains(i));
                if !q.contains(i) {
                    // Insert index-sorted within the segment's own region,
                    // bounded by the room the buffer still has.
                    let key = (u64::from(c) << 32) | u64::from(piece);
                    insert_bounded(out, segment_base, want, key);
                }
            }
        } else {
            // Sparse-candidate scan (the reference strategy): enumerate the
            // few missing pieces word-parallel, insertion-sort the top
            // `want` by key.
            for i in q.missing_from(other) {
                let key = (u64::from(self.counts[i]) << 32) | i as u64;
                insert_bounded(out, 0, want, key);
            }
        }
    }

    /// Checks the structural invariants (test support).
    #[cfg(test)]
    pub(crate) fn validate(&self) {
        let n = self.counts.len();
        assert_eq!(self.order.len(), n);
        assert_eq!(self.pos.len(), n);
        for (j, &i) in self.order.iter().enumerate() {
            assert_eq!(self.pos[i as usize] as usize, j, "pos inverse broken");
        }
        // Buckets are contiguous: counts never decrease along the
        // permutation.
        for w in self.order.windows(2) {
            assert!(
                self.counts[w[0] as usize] <= self.counts[w[1] as usize],
                "bucket contiguity broken at {}/{}",
                w[0],
                w[1]
            );
        }
        assert_eq!(self.bucket_start.first().copied().unwrap_or(0), 0);
        for (c, w) in self.bucket_start.windows(2).enumerate() {
            let below = self
                .counts
                .iter()
                .filter(|&&x| (x as usize) < c + 1)
                .count();
            assert_eq!(w[1] as usize, below, "bucket_start[{}] wrong", c + 1);
            assert!(w[0] <= w[1], "bucket boundaries must ascend");
        }
    }
}

/// Inserts `key` into the sorted region `out[base..]`, keeping the total
/// length capped at `cap`: the bounded insertion buffer both scan
/// strategies share.
#[inline]
fn insert_bounded(out: &mut Vec<u64>, base: usize, cap: usize, key: u64) {
    if out.len() < cap {
        let p = base + out[base..].partition_point(|&k| k < key);
        out.insert(p, key);
    } else if key < *out.last().expect("cap region is non-empty at capacity") {
        let p = base + out[base..].partition_point(|&k| k < key);
        out.pop();
        out.insert(p, key);
    }
}

#[cfg(test)]
mod tests {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn build_matches_counts() {
        let counts = vec![3, 0, 7, 3, 1, 0, 3];
        let idx = AvailIndex::from_counts(counts.clone());
        idx.validate();
        assert_eq!(idx.counts(), &counts[..]);
    }

    #[test]
    fn random_updates_keep_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 40;
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
        let mut idx = AvailIndex::from_counts(counts);
        for step in 0..2000 {
            let piece = rng.gen_range(0..n as usize);
            if idx.counts()[piece] == 0 || rng.gen_bool(0.6) {
                idx.increment(piece);
            } else {
                idx.decrement(piece);
            }
            if step % 97 == 0 {
                idx.validate();
            }
        }
        idx.validate();
    }

    #[test]
    fn batch_picks_match_reference_scan_on_both_strategies() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let pieces = 130; // multiple bitset words
        for case in 0..300 {
            // Alternate dense-missing and nearly-complete recipients so both
            // strategies are exercised, and concentrate counts on few values
            // every third case so segments hold many pieces (the
            // giant-bucket regime the swap-based updates are built for).
            let q_density = if case % 2 == 0 { 0.2 } else { 0.95 };
            let spread: u32 = if case % 3 == 0 { 3 } else { 30 };
            let mut q = PieceSet::new(pieces);
            let mut other = PieceSet::new(pieces);
            let counts: Vec<u32> = (0..pieces).map(|_| rng.gen_range(1..=spread)).collect();
            for i in 0..pieces {
                if rng.gen_bool(q_density) {
                    q.insert(i);
                }
                if rng.gen_bool(0.5) {
                    other.insert(i);
                }
            }
            // Exercise the index after churny updates, not only a fresh
            // build (fresh builds are fully sorted; updates shuffle the
            // within-bucket order).
            let mut idx = AvailIndex::from_counts(counts);
            for _ in 0..200 {
                let piece = rng.gen_range(0..pieces);
                if idx.counts()[piece] == 0 || rng.gen_bool(0.6) {
                    idx.increment(piece);
                } else {
                    idx.decrement(piece);
                }
            }
            let want = rng.gen_range(0..6);
            let mut got = Vec::new();
            idx.batch_picks(&q, &other, want, &mut got);
            let mut expect = Vec::new();
            crate::reference::batch_rarest_picks_scan(&q, &other, idx.counts(), want, &mut expect);
            assert_eq!(got, expect, "case {case} want {want}");
        }
    }

    #[test]
    fn zero_count_decrement_roundtrip() {
        let mut idx = AvailIndex::from_counts(vec![1, 2, 1]);
        idx.decrement(0);
        idx.increment(0);
        idx.validate();
        assert_eq!(idx.counts(), &[1, 2, 1]);
    }
}
