//! Incrementally maintained piece-availability index.
//!
//! The engine's rarest-first pick wants pieces in ascending
//! `(availability, index)` order. The historical implementation rescanned
//! the candidate bitset per delivery ([`crate::reference`] retains it);
//! this structure is a **bucketed counting histogram**: a permutation of
//! the pieces kept contiguous by holder count (bucket `c` holds the
//! pieces with exactly `c` present holders), with a ±1 availability
//! change repositioned by one *swap against the bucket boundary* —
//! strictly `O(1)`, no matter how the counts are distributed.
//!
//! Buckets are internally **unordered**; picks stay exact anyway because
//! the scan walks the permutation (buckets appear in ascending-count
//! order) and emits each count segment's candidates through a bounded
//! insertion buffer, i.e. in ascending piece index within the segment.
//! The emitted sequence is therefore identical to sorting by
//! `(count, index)` — and identical to the reference engine's per-pick
//! scans, which the differential suites in `crates/bittorrent/tests/`
//! pin bit-for-bit.
//!
//! The `O(1)` update is exactly the operation open membership needs: a
//! joining peer adds one holder per piece it brings, a leaving peer
//! removes one per piece it takes away ([`crate::Swarm::arrive`] /
//! [`crate::Swarm::depart`]).

use crate::PieceSet;

/// A parallel worker's thread-local availability delta: holder additions
/// accumulated during a round's delivery pass, drained into the shared
/// [`AvailIndex`] by [`AvailIndex::merge_shard`] once the workers join.
/// The `touched` list makes the drain `O(touched pieces)` per shard
/// rather than a full-population sweep, so the serial merge phase of a
/// million-peer round costs only what the round actually delivered.
#[derive(Debug, Clone, Default)]
pub(crate) struct AvailShard {
    /// Pending holder additions per piece; entries are zeroed as the
    /// shard drains, so a drained shard is reusable as-is.
    delta: Vec<u32>,
    /// Pieces with a non-zero delta, in first-touch order.
    touched: Vec<u32>,
}

impl AvailShard {
    /// Sizes the shard for `pieces` pieces. Cheap when already sized: a
    /// drained shard is all-zero and keeps its buffers.
    pub(crate) fn reset(&mut self, pieces: usize) {
        if self.delta.len() != pieces {
            self.delta = vec![0; pieces];
            self.touched.clear();
        }
        debug_assert!(self.touched.is_empty());
        debug_assert!(self.delta.iter().all(|&d| d == 0));
    }

    /// Records one holder addition for `piece`.
    #[inline]
    pub(crate) fn add(&mut self, piece: usize) {
        if self.delta[piece] == 0 {
            self.touched.push(piece as u32);
        }
        self.delta[piece] += 1;
    }
}

/// Piece availability (present-holder counts) with a bucket-contiguous
/// rarest-first permutation (see the [module docs](self)).
#[derive(Debug, Default)]
pub(crate) struct AvailIndex {
    /// Holder count per piece.
    counts: Vec<u32>,
    /// Permutation of the pieces, contiguous by ascending count; within a
    /// bucket the order is arbitrary.
    order: Vec<u32>,
    /// Inverse of `order`: `pos[piece]` locates the piece in `order`.
    pos: Vec<u32>,
    /// `bucket_start[c]` = first `order` slot whose count is ≥ `c`
    /// (equivalently: number of pieces with count < `c`). Extended lazily
    /// as counts grow; trailing entries equal `order.len()`.
    bucket_start: Vec<u32>,
}

/// Manual so `clone_from` reuses the destination's buffers — the parallel
/// round loop refreshes its start-of-round snapshot once per round and
/// must stay allocation-free in the steady state.
impl Clone for AvailIndex {
    fn clone(&self) -> Self {
        Self {
            counts: self.counts.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
            bucket_start: self.bucket_start.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.counts.clone_from(&src.counts);
        self.order.clone_from(&src.order);
        self.pos.clone_from(&src.pos);
        self.bucket_start.clone_from(&src.bucket_start);
    }
}

impl AvailIndex {
    /// Builds the index from raw holder counts.
    pub(crate) fn from_counts(counts: Vec<u32>) -> Self {
        let n = counts.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (counts[i as usize], i));
        let mut pos = vec![0u32; n];
        for (j, &i) in order.iter().enumerate() {
            pos[i as usize] = j as u32;
        }
        let max = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut bucket_start = vec![0u32; max + 2];
        for &c in &counts {
            bucket_start[c as usize + 1] += 1;
        }
        for c in 0..max + 1 {
            bucket_start[c + 1] += bucket_start[c];
        }
        Self {
            counts,
            order,
            pos,
            bucket_start,
        }
    }

    /// Holder count per piece.
    #[inline]
    pub(crate) fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Ensures `bucket_start[c]` is addressable.
    #[inline]
    fn ensure_bucket(&mut self, c: usize) {
        if self.bucket_start.len() <= c {
            let end = self.order.len() as u32;
            self.bucket_start.resize(c + 1, end);
        }
    }

    /// Swaps the permutation entries at `a` and `b`.
    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        if a != b {
            self.order.swap(a, b);
            self.pos[self.order[a] as usize] = a as u32;
            self.pos[self.order[b] as usize] = b as u32;
        }
    }

    /// Adds one holder of `piece`: one swap against the end of its bucket,
    /// then the boundary moves — `O(1)`.
    #[inline]
    pub(crate) fn increment(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        self.counts[piece] = (c + 1) as u32;
        self.ensure_bucket(c + 2);
        let last = self.bucket_start[c + 1] as usize - 1;
        self.swap_slots(self.pos[piece] as usize, last);
        self.bucket_start[c + 1] = last as u32;
    }

    /// Removes one holder of `piece`: one swap against the start of its
    /// bucket, then the boundary moves — `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the count is already zero.
    #[inline]
    pub(crate) fn decrement(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        debug_assert!(c > 0, "piece {piece} has no holders");
        self.counts[piece] = (c - 1) as u32;
        let first = self.bucket_start[c] as usize;
        self.swap_slots(self.pos[piece] as usize, first);
        self.bucket_start[c] = (first + 1) as u32;
    }

    /// Applies `by` holder additions to `piece` as the exact swap
    /// sequence of `by` successive [`AvailIndex::increment`] calls, so a
    /// batched shard drain leaves `order`/`pos` bit-identical to the
    /// serial one-increment-at-a-time walk it replaces.
    #[inline]
    pub(crate) fn increment_by(&mut self, piece: usize, by: u32) {
        for _ in 0..by {
            self.increment(piece);
        }
    }

    /// Drains one worker's shard into the index: touched pieces applied
    /// in ascending piece order, each as its full delta. Called once per
    /// shard in worker order, this replays the exact increment sequence
    /// of the historical worker-major full-population merge — shards are
    /// `O(touched)` to drain instead of `O(piece_count)`.
    pub(crate) fn merge_shard(&mut self, shard: &mut AvailShard) {
        shard.touched.sort_unstable();
        for &piece in &shard.touched {
            let p = piece as usize;
            let d = std::mem::take(&mut shard.delta[p]);
            self.increment_by(p, d);
        }
        shard.touched.clear();
    }

    /// The first `want` rarest-first picks among the pieces `other` has
    /// and `q` lacks, in pick order, packed `(count << 32) | piece` — the
    /// exact sequence `want` successive reference picks
    /// ([`PieceSet::rarest_missing_from`] + insert) produce, because
    /// inserting a pick bumps only its *own* availability and the
    /// remaining candidates' `(count, index)` keys never change.
    ///
    /// Two equivalent strategies, chosen by the **candidate count** from
    /// one word-parallel ANDNOT + `count_ones` sweep (the candidate mask
    /// `other & !q`): when candidates are dense — the seed-feeds-fresh
    /// -leecher transfers that dominate flash crowds and churning swarms
    /// — the permutation is walked front-to-back, probing the mask per
    /// entry (count segments ascend; each segment's candidates emit
    /// index-sorted through the insertion buffer, and the walk stops at
    /// the first segment boundary with the buffer full; an `O(1)` probe
    /// of the rarest bucket's size keeps homogeneous-availability states
    /// off this path, where whole-segment walks would not pay).
    /// Otherwise — sparse candidates, e.g. nearly-complete recipients —
    /// the mask words are scanned directly, exactly like the retained
    /// reference scan. Both strategies emit the identical canonical
    /// `(count, index)` sequence, so the heuristic is unobservable.
    #[inline]
    pub(crate) fn batch_picks(
        &self,
        q: &PieceSet,
        other: &PieceSet,
        want: usize,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        if want == 0 {
            return;
        }
        let pieces = q.piece_count();
        // O(1) probe of the rarest bucket's size: homogeneous availability
        // (a few giant segments) forces the walk through whole segments
        // before it may stop, so the bitset scan wins there.
        let spread = pieces > 0 && {
            let c0 = self.counts[self.order[0] as usize] as usize;
            let first_bucket = self.bucket_start[c0 + 1] - self.bucket_start[c0];
            (first_bucket as usize) * 8 <= pieces
        };
        // Candidate mask on the stack: 16 words cover every in-tree piece
        // count (≤ 1024 pieces); larger files take the mask-free scan.
        const MASK_WORDS: usize = 16;
        let word_len = pieces.div_ceil(64);
        if word_len <= MASK_WORDS {
            let mut mask = [0u64; MASK_WORDS];
            let cand = q.candidate_mask_into(other, &mut mask[..word_len]);
            if cand == 0 {
                return;
            }
            if spread && cand * 8 >= pieces {
                // Ordered walk over the bucket-contiguous permutation,
                // candidacy answered by one mask probe per entry.
                let mut segment_count = u32::MAX;
                let mut segment_base = 0usize; // finalized picks before this segment
                for &piece in &self.order {
                    let i = piece as usize;
                    let c = self.counts[i];
                    if c != segment_count {
                        // A segment boundary: earlier segments' picks are final.
                        if out.len() == want {
                            return;
                        }
                        segment_count = c;
                        segment_base = out.len();
                    }
                    if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                        // Insert index-sorted within the segment's own region,
                        // bounded by the room the buffer still has.
                        let key = (u64::from(c) << 32) | u64::from(piece);
                        insert_bounded(out, segment_base, want, key);
                    }
                }
            } else {
                // Sparse-candidate scan (the reference strategy) over the
                // mask words, insertion-sorting the top `want` by key.
                for (w, &word) in mask[..word_len].iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let key = (u64::from(self.counts[i]) << 32) | i as u64;
                        insert_bounded(out, 0, want, key);
                    }
                }
            }
        } else {
            // Mask-free fallback for very large files: enumerate missing
            // pieces word-parallel, insertion-sort the top `want` by key.
            for i in q.missing_from(other) {
                let key = (u64::from(self.counts[i]) << 32) | i as u64;
                insert_bounded(out, 0, want, key);
            }
        }
    }

    /// Checks the structural invariants (test support).
    #[cfg(test)]
    pub(crate) fn validate(&self) {
        let n = self.counts.len();
        assert_eq!(self.order.len(), n);
        assert_eq!(self.pos.len(), n);
        for (j, &i) in self.order.iter().enumerate() {
            assert_eq!(self.pos[i as usize] as usize, j, "pos inverse broken");
        }
        // Buckets are contiguous: counts never decrease along the
        // permutation.
        for w in self.order.windows(2) {
            assert!(
                self.counts[w[0] as usize] <= self.counts[w[1] as usize],
                "bucket contiguity broken at {}/{}",
                w[0],
                w[1]
            );
        }
        assert_eq!(self.bucket_start.first().copied().unwrap_or(0), 0);
        for (c, w) in self.bucket_start.windows(2).enumerate() {
            let below = self
                .counts
                .iter()
                .filter(|&&x| (x as usize) < c + 1)
                .count();
            assert_eq!(w[1] as usize, below, "bucket_start[{}] wrong", c + 1);
            assert!(w[0] <= w[1], "bucket boundaries must ascend");
        }
    }
}

/// Inserts `key` into the sorted region `out[base..]`, keeping the total
/// length capped at `cap`: the bounded insertion buffer both scan
/// strategies share.
#[inline]
fn insert_bounded(out: &mut Vec<u64>, base: usize, cap: usize, key: u64) {
    if out.len() < cap {
        let p = base + out[base..].partition_point(|&k| k < key);
        out.insert(p, key);
    } else if key < *out.last().expect("cap region is non-empty at capacity") {
        let p = base + out[base..].partition_point(|&k| k < key);
        out.pop();
        out.insert(p, key);
    }
}

#[cfg(test)]
mod tests {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn build_matches_counts() {
        let counts = vec![3, 0, 7, 3, 1, 0, 3];
        let idx = AvailIndex::from_counts(counts.clone());
        idx.validate();
        assert_eq!(idx.counts(), &counts[..]);
    }

    #[test]
    fn random_updates_keep_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 40;
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
        let mut idx = AvailIndex::from_counts(counts);
        for step in 0..2000 {
            let piece = rng.gen_range(0..n as usize);
            if idx.counts()[piece] == 0 || rng.gen_bool(0.6) {
                idx.increment(piece);
            } else {
                idx.decrement(piece);
            }
            if step % 97 == 0 {
                idx.validate();
            }
        }
        idx.validate();
    }

    #[test]
    fn batch_picks_match_reference_scan_on_both_strategies() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let pieces = 130; // multiple bitset words
        for case in 0..300 {
            // Alternate dense-missing and nearly-complete recipients so both
            // strategies are exercised, and concentrate counts on few values
            // every third case so segments hold many pieces (the
            // giant-bucket regime the swap-based updates are built for).
            let q_density = if case % 2 == 0 { 0.2 } else { 0.95 };
            let spread: u32 = if case % 3 == 0 { 3 } else { 30 };
            let mut q = PieceSet::new(pieces);
            let mut other = PieceSet::new(pieces);
            let counts: Vec<u32> = (0..pieces).map(|_| rng.gen_range(1..=spread)).collect();
            for i in 0..pieces {
                if rng.gen_bool(q_density) {
                    q.insert(i);
                }
                if rng.gen_bool(0.5) {
                    other.insert(i);
                }
            }
            // Exercise the index after churny updates, not only a fresh
            // build (fresh builds are fully sorted; updates shuffle the
            // within-bucket order).
            let mut idx = AvailIndex::from_counts(counts);
            for _ in 0..200 {
                let piece = rng.gen_range(0..pieces);
                if idx.counts()[piece] == 0 || rng.gen_bool(0.6) {
                    idx.increment(piece);
                } else {
                    idx.decrement(piece);
                }
            }
            let want = rng.gen_range(0..6);
            let mut got = Vec::new();
            idx.batch_picks(&q, &other, want, &mut got);
            let mut expect = Vec::new();
            crate::reference::batch_rarest_picks_scan(&q, &other, idx.counts(), want, &mut expect);
            assert_eq!(got, expect, "case {case} want {want}");
        }
    }

    #[test]
    fn zero_count_decrement_roundtrip() {
        let mut idx = AvailIndex::from_counts(vec![1, 2, 1]);
        idx.decrement(0);
        idx.increment(0);
        idx.validate();
        assert_eq!(idx.counts(), &[1, 2, 1]);
    }

    /// `increment_by(p, k)` is exactly `k` single increments: same
    /// counts, same invariants, and the same `batch_picks` output (the
    /// full observable surface — within-bucket order is free to differ).
    #[test]
    fn increment_by_matches_repeated_increments() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xba7c);
        let pieces = 70;
        for case in 0..60 {
            let counts: Vec<u32> = (0..pieces).map(|_| rng.gen_range(0..5)).collect();
            let mut bulk = AvailIndex::from_counts(counts.clone());
            let mut single = AvailIndex::from_counts(counts);
            for _ in 0..40 {
                let piece = rng.gen_range(0..pieces);
                let by = rng.gen_range(0..6u32);
                bulk.increment_by(piece, by);
                for _ in 0..by {
                    single.increment(piece);
                }
            }
            bulk.validate();
            assert_eq!(bulk.counts(), single.counts(), "case {case}");
            let mut q = PieceSet::new(pieces);
            let mut other = PieceSet::new(pieces);
            for i in 0..pieces {
                if rng.gen_bool(0.4) {
                    q.insert(i);
                }
                if rng.gen_bool(0.5) {
                    other.insert(i);
                }
            }
            let (mut got_bulk, mut got_single) = (Vec::new(), Vec::new());
            bulk.batch_picks(&q, &other, 4, &mut got_bulk);
            single.batch_picks(&q, &other, 4, &mut got_single);
            assert_eq!(got_bulk, got_single, "case {case} picks");
        }
    }

    /// Draining worker shards in order is exactly the serial increment
    /// walk: `merge_shard` over any partition of the additions leaves the
    /// same counts and invariants, and empties every shard for reuse.
    #[test]
    fn shard_merge_matches_serial_increments() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5a4d);
        let pieces = 90;
        for workers in [1usize, 2, 3, 8] {
            let counts: Vec<u32> = (0..pieces).map(|_| rng.gen_range(0..4)).collect();
            let mut sharded = AvailIndex::from_counts(counts.clone());
            let mut serial = AvailIndex::from_counts(counts);
            let mut shards: Vec<AvailShard> = vec![AvailShard::default(); workers];
            for shard in &mut shards {
                shard.reset(pieces);
            }
            for _ in 0..500 {
                let piece = rng.gen_range(0..pieces);
                let worker = rng.gen_range(0..workers);
                shards[worker].add(piece);
                serial.increment(piece);
            }
            for shard in &mut shards {
                sharded.merge_shard(shard);
            }
            sharded.validate();
            assert_eq!(sharded.counts(), serial.counts(), "workers {workers}");
            // Drained shards are all-zero and immediately reusable.
            for shard in &mut shards {
                shard.reset(pieces);
            }
        }
    }
}
