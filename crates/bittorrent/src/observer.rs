//! Zero-cost run observers: a trace tap over all three execution engines.
//!
//! The Legout-group validation experiments (unchoke clustering, overlay
//! diameter under tracker caps, fluid transients) need *per-event* traces
//! — who unchoked whom, which transfers happened, when peers arrived and
//! left — but the engines' hot paths are allocation-free and must stay
//! that way. This module threads a [`RunObserver`] type parameter through
//! [`Swarm::round_with`](crate::Swarm::round_with),
//! [`Swarm::run_rounds_parallel_with`](crate::Swarm::run_rounds_parallel_with),
//! [`Session::run_rounds_with`](crate::session::Session::run_rounds_with)
//! and [`EventEngine::run_for_with`](crate::events::EventEngine::run_for_with);
//! the default [`NullObserver`] sets [`RunObserver::ENABLED`] to `false`,
//! every call site is guarded by that associated constant, and
//! monomorphization deletes the whole tap — the unobserved methods
//! (`round`, `run_rounds`, …) are thin wrappers over their `_with`
//! variants and compile to the same code as before (`bench_observer`
//! asserts the overhead stays under 1 %).
//!
//! # Determinism contract
//!
//! Observers are **pure taps**: every hook takes `&self`, no hook is
//! handed a random-number generator, and the engines never branch on
//! observer state. Attaching any observer therefore changes no swarm
//! state and consumes no randomness — observed and unobserved runs are
//! bit-identical (`tests/observer_differential.rs` proves this for all
//! three engines at 1/2/8 threads).
//!
//! # Time units
//!
//! Hooks report time in *engine-native* units: the round index (as `f64`)
//! for the round engines ([`Swarm`](crate::Swarm) and
//! [`Session`](crate::session::Session); completions stamp `round + 1`,
//! matching [`Peer::completed_round`](crate::Peer::completed_round)), and
//! τ in rechoke-interval units for the
//! [`EventEngine`](crate::events::EventEngine). In the synchronous limit
//! the two coincide.
//!
//! # Ordering under parallel execution
//!
//! On the serial engines every recorded sequence is totally ordered and
//! deterministic. Under [`run_rounds_parallel_with`] the *global*
//! interleaving of events from different workers is nondeterministic,
//! but (a) rounds are barriers, (b) the per-sender subsequence of
//! unchoke events and the per-recipient subsequence of transfer events
//! are each produced by a single worker in deterministic order, and
//! (c) within one round every share a sender emits has the same value —
//! so all the *aggregates* this module computes (kbit sums per peer,
//! class-pair unchoke counts) are exact and thread-invariant.
//!
//! [`run_rounds_parallel_with`]: crate::Swarm::run_rounds_parallel_with

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A passive tap on engine events.
///
/// All hooks default to empty bodies, so implementors override only what
/// they record. The `Sync` supertrait lets one observer be shared by the
/// parallel round engine's workers; recorders use interior mutability
/// (a mutex or atomics).
///
/// Peers are identified by arena slot index (the engines' `PeerId`);
/// observers that need bandwidth classes map slots themselves (see
/// [`ClusterObserver`]), keeping the engine hooks class-agnostic.
pub trait RunObserver: Sync {
    /// Whether the engines should emit events at all. Call sites are
    /// guarded by this constant, so a `false` observer (the
    /// [`NullObserver`]) monomorphizes to exactly the unobserved code.
    const ENABLED: bool = true;

    /// `peer` unchoked `target` (a neighbour slot resolved to its arena
    /// index) for the coming interval; `optimistic` distinguishes the
    /// optimistic slot from reciprocation (TFT) slots.
    fn unchoke(&self, _time: f64, _peer: usize, _target: usize, _optimistic: bool) {}

    /// `kbit` kilobits were delivered from `sender` to `recipient`
    /// (`tft` mirrors the unchoke kind the flow rode on).
    fn transfer(&self, _time: f64, _sender: usize, _recipient: usize, _kbit: f64, _tft: bool) {}

    /// A transfer of `kbit` from `sender` was lost in transit (fault
    /// plane): the sender spent the capacity, `recipient` saw nothing.
    fn transfer_lost(&self, _time: f64, _sender: usize, _recipient: usize, _kbit: f64) {}

    /// `recipient` converted accumulated credit into `piece`.
    fn piece_converted(&self, _time: f64, _recipient: usize, _piece: usize) {}

    /// `peer` completed the file. `time` is the completion stamp the
    /// engine records (`round + 1` on the round engines, τ on the event
    /// engine).
    fn completed(&self, _time: f64, _peer: usize) {}

    /// `peer` joined the swarm (session/event-engine arrivals).
    fn arrival(&self, _time: f64, _peer: usize) {}

    /// `peer` left gracefully (completion, seed-leave, exodus or abort).
    fn departure(&self, _time: f64, _peer: usize) {}

    /// `peer` crashed (fault plane) — state torn down, no goodbye.
    fn crash(&self, _time: f64, _peer: usize) {}

    /// `peer` re-announced to the tracker (event engine only).
    fn announce(&self, _time: f64, _peer: usize) {}

    /// `peer`'s rechoke timer fired (event engine only; the round
    /// engines rechoke every peer every round and report
    /// [`round_end`](Self::round_end) instead).
    fn rechoke_tick(&self, _time: f64, _peer: usize) {}

    /// A synchronous round finished; `round` is the completed round's
    /// index (the engine's round counter is now `round + 1`).
    fn round_end(&self, _round: u64) {}
}

/// The do-nothing default observer: `ENABLED = false`, so every guarded
/// hook site compiles away and observed code paths are bit- and
/// cost-identical to the unobserved ones.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    const ENABLED: bool = false;
}

/// Everything a [`TraceObserver`] recorded, as plain event vectors.
///
/// Tuple layouts mirror the hook signatures:
/// `unchokes: (time, peer, target, optimistic)`,
/// `transfers: (time, sender, recipient, kbit, tft)`,
/// `losses: (time, sender, recipient, kbit)`,
/// `pieces: (time, recipient, piece)`, and the per-peer lifecycle
/// vectors are `(time, peer)`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceLog {
    /// Unchoke decisions.
    pub unchokes: Vec<(f64, usize, usize, bool)>,
    /// Delivered transfers.
    pub transfers: Vec<(f64, usize, usize, f64, bool)>,
    /// Transfers lost to the fault plane.
    pub losses: Vec<(f64, usize, usize, f64)>,
    /// Credit-to-piece conversions.
    pub pieces: Vec<(f64, usize, usize)>,
    /// File completions.
    pub completions: Vec<(f64, usize)>,
    /// Arrivals.
    pub arrivals: Vec<(f64, usize)>,
    /// Graceful departures.
    pub departures: Vec<(f64, usize)>,
    /// Crashes.
    pub crashes: Vec<(f64, usize)>,
    /// Tracker announces (event engine).
    pub announces: Vec<(f64, usize)>,
    /// Rechoke timer firings (event engine).
    pub rechokes: Vec<(f64, usize)>,
    /// Completed synchronous rounds.
    pub rounds: u64,
}

impl TraceLog {
    /// Per-slot delivered upload kilobits, summed in recorded order over
    /// `transfers` and `losses` (a lost transfer still spends the
    /// sender's capacity). With `n` arena slots, matches the engine's
    /// [`Peer::total_uploaded`](crate::Peer::total_uploaded) bit-for-bit
    /// on serial runs, and exactly on parallel runs too (equal-share
    /// argument in the module docs).
    #[must_use]
    pub fn uploaded_kbit(&self, n: usize) -> Vec<f64> {
        let mut up = vec![0.0f64; n];
        let mut ti = 0usize;
        let mut li = 0usize;
        // Merge the two streams in time order so each sender's adds
        // replay in the engine's accumulation order.
        while ti < self.transfers.len() || li < self.losses.len() {
            let take_transfer = match (self.transfers.get(ti), self.losses.get(li)) {
                (Some(t), Some(l)) => t.0 <= l.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_transfer {
                let (_, s, _, kbit, _) = self.transfers[ti];
                up[s] += kbit;
                ti += 1;
            } else {
                let (_, s, _, kbit) = self.losses[li];
                up[s] += kbit;
                li += 1;
            }
        }
        up
    }

    /// Per-slot delivered download kilobits summed in recorded order.
    #[must_use]
    pub fn downloaded_kbit(&self, n: usize) -> Vec<f64> {
        let mut down = vec![0.0f64; n];
        for &(_, _, r, kbit, _) in &self.transfers {
            down[r] += kbit;
        }
        down
    }

    /// Per-slot kilobits lost in transit towards each recipient.
    #[must_use]
    pub fn lost_kbit(&self, n: usize) -> Vec<f64> {
        let mut lost = vec![0.0f64; n];
        for &(_, _, r, kbit) in &self.losses {
            lost[r] += kbit;
        }
        lost
    }

    /// `arrivals − departures − crashes`: the observed net population
    /// change, which must equal the polled population delta.
    #[must_use]
    pub fn net_population_delta(&self) -> i64 {
        self.arrivals.len() as i64 - self.departures.len() as i64 - self.crashes.len() as i64
    }
}

/// Records every event into a [`TraceLog`] behind a mutex.
///
/// Built for tests and analysis passes, not for the hot loop: each hook
/// takes the lock and pushes. The lock is uncontended on the serial
/// engines; under the parallel engine it serializes workers at event
/// granularity (correct, merely slow).
#[derive(Debug, Default)]
pub struct TraceObserver {
    log: Mutex<TraceLog>,
}

impl TraceObserver {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder and returns its log.
    ///
    /// # Panics
    ///
    /// Panics if a hook panicked while holding the lock.
    #[must_use]
    pub fn into_log(self) -> TraceLog {
        self.log.into_inner().expect("trace mutex poisoned")
    }

    /// Clones the log recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a hook panicked while holding the lock.
    #[must_use]
    pub fn snapshot(&self) -> TraceLog {
        self.log.lock().expect("trace mutex poisoned").clone()
    }

    fn with<R>(&self, f: impl FnOnce(&mut TraceLog) -> R) -> R {
        f(&mut self.log.lock().expect("trace mutex poisoned"))
    }
}

impl RunObserver for TraceObserver {
    fn unchoke(&self, time: f64, peer: usize, target: usize, optimistic: bool) {
        self.with(|l| l.unchokes.push((time, peer, target, optimistic)));
    }
    fn transfer(&self, time: f64, sender: usize, recipient: usize, kbit: f64, tft: bool) {
        self.with(|l| l.transfers.push((time, sender, recipient, kbit, tft)));
    }
    fn transfer_lost(&self, time: f64, sender: usize, recipient: usize, kbit: f64) {
        self.with(|l| l.losses.push((time, sender, recipient, kbit)));
    }
    fn piece_converted(&self, time: f64, recipient: usize, piece: usize) {
        self.with(|l| l.pieces.push((time, recipient, piece)));
    }
    fn completed(&self, time: f64, peer: usize) {
        self.with(|l| l.completions.push((time, peer)));
    }
    fn arrival(&self, time: f64, peer: usize) {
        self.with(|l| l.arrivals.push((time, peer)));
    }
    fn departure(&self, time: f64, peer: usize) {
        self.with(|l| l.departures.push((time, peer)));
    }
    fn crash(&self, time: f64, peer: usize) {
        self.with(|l| l.crashes.push((time, peer)));
    }
    fn announce(&self, time: f64, peer: usize) {
        self.with(|l| l.announces.push((time, peer)));
    }
    fn rechoke_tick(&self, time: f64, peer: usize) {
        self.with(|l| l.rechokes.push((time, peer)));
    }
    fn round_end(&self, _round: u64) {
        self.with(|l| l.rounds += 1);
    }
}

/// Class marker for peers excluded from clustering statistics (seeds,
/// observers' own bookkeeping slots, …).
pub const UNTRACKED_CLASS: u32 = u32::MAX;

/// The cluster-affinity summary of an unchoke history (Legout et al.,
/// *Clustering and Sharing Incentives in BitTorrent Systems*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterAffinity {
    /// Fraction of tracked unchoke-time spent on same-class targets.
    pub same_fraction: f64,
    /// The class-blind expectation: the same fraction if every issuer
    /// chose uniformly among the *other* tracked peers, weighted by how
    /// many unchokes each class actually issued.
    pub baseline: f64,
    /// Tracked unchoke events the statistics are over.
    pub unchokes: u64,
}

impl ClusterAffinity {
    /// `same_fraction − baseline`: positive means clustering.
    #[must_use]
    pub fn excess(&self) -> f64 {
        self.same_fraction - self.baseline
    }
}

/// Counts unchoke decisions by (issuer class, target class), separately
/// for TFT and optimistic slots, with lock-free atomic counters — the
/// aggregates are order-independent integers, so parallel runs produce
/// the same matrices as serial ones.
///
/// The slot→class map is fixed at construction; slots mapped to
/// [`UNTRACKED_CLASS`] (or beyond the map) contribute nothing.
#[derive(Debug)]
pub struct ClusterObserver {
    classes: Vec<u32>,
    k: usize,
    /// `k × k` row-major (issuer class, target class) counts.
    tft: Vec<AtomicU64>,
    optimistic: Vec<AtomicU64>,
}

impl ClusterObserver {
    /// Builds an observer over a slot→class map. Classes must be dense
    /// small integers (`0..k`); use [`UNTRACKED_CLASS`] for slots to
    /// ignore.
    #[must_use]
    pub fn new(classes: Vec<u32>) -> Self {
        let k = classes
            .iter()
            .filter(|&&c| c != UNTRACKED_CLASS)
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0);
        let cells = k * k;
        Self {
            classes,
            k,
            tft: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            optimistic: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Builds an observer with a fixed class count and an empty slot
    /// map: every slot starts untracked and is registered through
    /// [`assign_class`](Self::assign_class) as it fills — the shape the
    /// universe experiments need, where arrivals land in arena slots
    /// over time.
    #[must_use]
    pub fn with_class_count(k: usize) -> Self {
        let cells = k * k;
        Self {
            classes: Vec::new(),
            k,
            tft: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            optimistic: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Maps `slot` to `class` from now on (growing the slot map with
    /// untracked entries as needed). Re-assigning a slot is idempotent
    /// for an unchanged class; past counts are never re-bucketed, so a
    /// recycled slot's new class applies only to unchokes recorded after
    /// the call.
    ///
    /// # Panics
    ///
    /// Panics if `class` is neither below the observer's class count nor
    /// [`UNTRACKED_CLASS`].
    pub fn assign_class(&mut self, slot: usize, class: u32) {
        assert!(
            class == UNTRACKED_CLASS || (class as usize) < self.k,
            "class {class} out of range (k = {})",
            self.k
        );
        if slot >= self.classes.len() {
            self.classes.resize(slot + 1, UNTRACKED_CLASS);
        }
        self.classes[slot] = class;
    }

    fn class_of(&self, slot: usize) -> Option<usize> {
        match self.classes.get(slot) {
            Some(&c) if c != UNTRACKED_CLASS => Some(c as usize),
            _ => None,
        }
    }

    /// The (issuer class, target class) TFT unchoke counts, row-major.
    #[must_use]
    pub fn tft_matrix(&self) -> Vec<u64> {
        self.tft.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// The (issuer class, target class) optimistic unchoke counts.
    #[must_use]
    pub fn optimistic_matrix(&self) -> Vec<u64> {
        self.optimistic
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Affinity over TFT (reciprocation) unchokes — the clustering
    /// signal. `None` when no tracked TFT unchoke was observed.
    #[must_use]
    pub fn tft_affinity(&self) -> Option<ClusterAffinity> {
        self.affinity_of(&self.tft_matrix())
    }

    /// Affinity over optimistic unchokes — class-blind by protocol, so
    /// this should sit at the baseline.
    #[must_use]
    pub fn optimistic_affinity(&self) -> Option<ClusterAffinity> {
        self.affinity_of(&self.optimistic_matrix())
    }

    /// Tracked-peer head-counts per class.
    #[must_use]
    pub fn class_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.k];
        for &c in &self.classes {
            if c != UNTRACKED_CLASS {
                sizes[c as usize] += 1;
            }
        }
        sizes
    }

    fn affinity_of(&self, matrix: &[u64]) -> Option<ClusterAffinity> {
        let sizes = self.class_sizes();
        let tracked: u64 = sizes.iter().sum();
        let mut total = 0u64;
        let mut same = 0u64;
        let mut baseline_num = 0.0f64;
        for a in 0..self.k {
            let issued: u64 = matrix[a * self.k..(a + 1) * self.k].iter().sum();
            total += issued;
            same += matrix[a * self.k + a];
            if tracked > 1 {
                baseline_num +=
                    issued as f64 * (sizes[a].saturating_sub(1) as f64) / (tracked - 1) as f64;
            }
        }
        (total > 0).then(|| ClusterAffinity {
            same_fraction: same as f64 / total as f64,
            baseline: baseline_num / total as f64,
            unchokes: total,
        })
    }
}

impl RunObserver for ClusterObserver {
    fn unchoke(&self, _time: f64, peer: usize, target: usize, optimistic: bool) {
        let (Some(a), Some(b)) = (self.class_of(peer), self.class_of(target)) else {
            return;
        };
        let cell = a * self.k + b;
        let matrix = if optimistic {
            &self.optimistic
        } else {
            &self.tft
        };
        matrix[cell].fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn null_observer_is_disabled() {
        const { assert!(!NullObserver::ENABLED) };
        const { assert!(TraceObserver::ENABLED) };
    }

    #[test]
    fn perfect_clustering_scores_one() {
        // Two classes of 3; every peer always unchokes within its class.
        let obs = ClusterObserver::new(vec![0, 0, 0, 1, 1, 1]);
        for round in 0..10 {
            let t = f64::from(round);
            obs.unchoke(t, 0, 1, false);
            obs.unchoke(t, 1, 2, false);
            obs.unchoke(t, 3, 4, false);
            obs.unchoke(t, 4, 5, false);
        }
        let aff = obs.tft_affinity().unwrap();
        assert_close(aff.same_fraction, 1.0);
        // Blind expectation with two equal classes of 3 among 6 peers:
        // (3 − 1) / (6 − 1) = 0.4.
        assert_close(aff.baseline, 0.4);
        assert!(aff.excess() > 0.5);
        assert_eq!(aff.unchokes, 40);
    }

    #[test]
    fn class_blind_history_scores_the_baseline() {
        // Every peer unchokes every *other* peer exactly once: the
        // uniform history, whose same-fraction is the baseline by
        // construction.
        let classes = vec![0, 0, 1, 1, 1];
        let n = classes.len();
        let obs = ClusterObserver::new(classes);
        for p in 0..n {
            for q in 0..n {
                if p != q {
                    obs.unchoke(0.0, p, q, true);
                }
            }
        }
        let aff = obs.optimistic_affinity().unwrap();
        assert_close(aff.same_fraction, aff.baseline);
        assert!(obs.tft_affinity().is_none(), "no TFT unchokes were fed");
    }

    #[test]
    fn free_rider_edge_cases() {
        // A free-rider issues nothing: it dilutes the baseline as a
        // *target* but contributes no unchoke-time.
        let obs = ClusterObserver::new(vec![0, 0, 1]);
        obs.unchoke(0.0, 0, 1, false); // class 0 → class 0
        let aff = obs.tft_affinity().unwrap();
        assert_close(aff.same_fraction, 1.0);
        // Issuer class 0: (2 − 1) / (3 − 1) = 0.5.
        assert_close(aff.baseline, 0.5);

        // All-free-rider history: no events, no affinity.
        let idle = ClusterObserver::new(vec![0, 1]);
        assert!(idle.tft_affinity().is_none());

        // Unchokes touching untracked peers (seeds) are ignored.
        let seeded = ClusterObserver::new(vec![0, 0, UNTRACKED_CLASS]);
        seeded.unchoke(0.0, 2, 0, false); // seed issuing
        seeded.unchoke(0.0, 0, 2, false); // seed targeted
        assert!(seeded.tft_affinity().is_none());
        seeded.unchoke(0.0, 0, 1, false);
        assert_eq!(seeded.tft_affinity().unwrap().unchokes, 1);
    }

    #[test]
    fn single_class_baseline_is_one() {
        // With one tracked class, same-fraction and baseline are both 1:
        // clustering is vacuous, excess is 0.
        let obs = ClusterObserver::new(vec![0, 0, 0]);
        obs.unchoke(0.0, 0, 1, false);
        obs.unchoke(0.0, 1, 2, false);
        let aff = obs.tft_affinity().unwrap();
        assert_close(aff.same_fraction, 1.0);
        assert_close(aff.baseline, 1.0);
        assert_close(aff.excess(), 0.0);
    }

    #[test]
    fn trace_log_sums_follow_recorded_order() {
        let obs = TraceObserver::new();
        obs.transfer(0.0, 0, 1, 100.0, true);
        obs.transfer_lost(0.0, 0, 2, 50.0);
        obs.transfer(1.0, 2, 0, 25.0, false);
        obs.arrival(1.0, 3);
        obs.departure(2.0, 1);
        obs.crash(2.0, 2);
        obs.round_end(0);
        let log = obs.into_log();
        assert_eq!(log.uploaded_kbit(4), vec![150.0, 0.0, 25.0, 0.0]);
        assert_eq!(log.downloaded_kbit(4), vec![25.0, 100.0, 0.0, 0.0]);
        assert_eq!(log.lost_kbit(4), vec![0.0, 0.0, 50.0, 0.0]);
        assert_eq!(log.net_population_delta(), 1 - 2);
        assert_eq!(log.rounds, 1);
    }
}
