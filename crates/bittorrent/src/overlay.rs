//! Overlay-degradation metrics: how broken is the swarm's connectivity?
//!
//! The fault plane ([`crate::faults`]) damages the overlay — crashes tear
//! rows out, partitions sever halves — and the stratification results of
//! the paper only hold while the swarm stays effectively connected. This
//! module measures the quantities that degrade, over the public [`Swarm`]
//! read API (it never mutates and consumes no randomness):
//!
//! * connected components and the **largest component** size;
//! * BFS **diameter** of the largest component;
//! * **seed reachability** — how many downloading peers can still route
//!   to a peer that holds the complete file;
//! * **stall detection** — downloading peers none of whose neighbours
//!   hold a piece they lack (piece-mode interest, so a peer surrounded
//!   only by mirrors of itself counts as stalled);
//! * recovery tracking: [`fully_connected`] is the predicate experiments
//!   poll to report recovery-time-to-full-connectivity after a heal.

use crate::swarm::Swarm;

/// One read-only measurement of the overlay's health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlaySnapshot {
    /// Present peers (arena slots currently occupied).
    pub present: usize,
    /// Connected components among present peers.
    pub components: usize,
    /// Size of the largest connected component (0 on an empty swarm).
    pub largest_component: usize,
    /// BFS diameter of the largest component (0 when it has ≤ 1 peer).
    pub diameter: usize,
    /// Downloading peers with an overlay path to a seeding peer.
    pub seed_reachable: usize,
    /// Downloading (incomplete) present peers.
    pub downloading: usize,
    /// Downloading peers whose neighbourhood offers no useful piece.
    pub stalled: usize,
    /// Mean overlay degree over present peers (0 on an empty swarm).
    pub mean_degree: f64,
}

/// Whether every present peer sits in one connected component — the
/// recovery predicate after a partition heals (vacuously true on empty
/// swarms).
#[must_use]
pub fn fully_connected(swarm: &Swarm) -> bool {
    let snap = snapshot(swarm);
    snap.largest_component == snap.present
}

/// Measures the overlay: one BFS sweep for components, one BFS per peer
/// of the largest component for its diameter, one multi-source BFS from
/// the seeding peers for reachability. `O(largest_component · edges)`
/// overall — built for session-scale populations, not the 10⁵-peer
/// closed-swarm benchmarks.
#[must_use]
pub fn snapshot(swarm: &Swarm) -> OverlaySnapshot {
    let n = swarm.peer_count();
    let present: Vec<usize> = (0..n).filter(|&p| swarm.is_present(p)).collect();
    let present_count = present.len();

    // Component labelling by BFS.
    let mut comp = vec![usize::MAX; n];
    let mut comp_sizes: Vec<usize> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    for &start in &present {
        if comp[start] != usize::MAX {
            continue;
        }
        let label = comp_sizes.len();
        let mut size = 0usize;
        comp[start] = label;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let p = queue[head];
            head += 1;
            size += 1;
            for q in swarm.neighbors(p) {
                if comp[q] == usize::MAX {
                    comp[q] = label;
                    queue.push(q);
                }
            }
        }
        comp_sizes.push(size);
    }
    let components = comp_sizes.len();
    let (largest_label, largest_component) = comp_sizes
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|&(label, size)| (size, std::cmp::Reverse(label)))
        .unwrap_or((0, 0));

    // Diameter of the largest component: eccentricity sweep.
    let mut diameter = 0usize;
    if largest_component > 1 {
        let mut dist = vec![usize::MAX; n];
        for &source in present.iter().filter(|&&p| comp[p] == largest_label) {
            for &p in &present {
                dist[p] = usize::MAX;
            }
            dist[source] = 0;
            queue.clear();
            queue.push(source);
            let mut head = 0;
            while head < queue.len() {
                let p = queue[head];
                head += 1;
                diameter = diameter.max(dist[p]);
                for q in swarm.neighbors(p) {
                    if dist[q] == usize::MAX {
                        dist[q] = dist[p] + 1;
                        queue.push(q);
                    }
                }
            }
        }
    }

    // Seed reachability: multi-source BFS from every seeding peer.
    let mut reaches_seed = vec![false; n];
    queue.clear();
    for &p in &present {
        if swarm.peer(p).is_seeding() {
            reaches_seed[p] = true;
            queue.push(p);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let p = queue[head];
        head += 1;
        for q in swarm.neighbors(p) {
            if !reaches_seed[q] {
                reaches_seed[q] = true;
                queue.push(q);
            }
        }
    }

    let mut downloading = 0usize;
    let mut seed_reachable = 0usize;
    let mut stalled = 0usize;
    for &p in &present {
        let view = swarm.peer(p);
        if view.is_seeding() {
            continue;
        }
        downloading += 1;
        if reaches_seed[p] {
            seed_reachable += 1;
        }
        let useful = swarm
            .neighbors(p)
            .any(|q| view.pieces().is_interested_in(swarm.peer(q).pieces()));
        if !useful {
            stalled += 1;
        }
    }

    let degree_total: usize = present.iter().map(|&p| swarm.degree(p)).sum();
    OverlaySnapshot {
        present: present_count,
        components,
        largest_component,
        diameter,
        seed_reachable,
        downloading,
        stalled,
        mean_degree: if present_count == 0 {
            0.0
        } else {
            degree_total as f64 / present_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeerBehavior, PieceSet, Swarm, SwarmConfig};

    fn tiny_swarm() -> Swarm {
        let config = SwarmConfig::builder()
            .leechers(11)
            .seeds(1)
            .piece_count(16)
            .initial_completion(0.3)
            .mean_neighbors(4.0)
            .seed(11)
            .build();
        Swarm::new(config, &[300.0; 12])
    }

    #[test]
    fn snapshot_of_connected_swarm() {
        let swarm = tiny_swarm();
        let snap = snapshot(&swarm);
        assert_eq!(snap.present, 12);
        assert!(snap.components >= 1);
        // Every non-largest component holds at least one peer.
        assert!(snap.largest_component + (snap.components - 1) <= snap.present);
        assert!(snap.largest_component >= 1 && snap.largest_component <= 12);
        assert!(snap.downloading <= 12);
        assert!(snap.seed_reachable <= snap.downloading);
        assert!(snap.stalled <= snap.downloading);
        assert!(snap.mean_degree > 0.0);
        if snap.components == 1 {
            assert!(fully_connected(&swarm));
            assert!(snap.diameter >= 1);
        }
    }

    #[test]
    fn departures_split_metrics_track() {
        let mut swarm = tiny_swarm();
        swarm.reserve_overlay_slack(4);
        let before = snapshot(&swarm);
        // Sever a peer's whole neighbourhood: it becomes its own component.
        let victim = 0;
        let nbrs: Vec<usize> = swarm.neighbors(victim).collect();
        for q in nbrs {
            assert!(swarm.disconnect_peers(victim, q));
        }
        let after = snapshot(&swarm);
        assert_eq!(after.present, before.present);
        assert!(
            after.components > 1,
            "isolated peer forms its own component"
        );
        assert!(!fully_connected(&swarm));
        assert!(after.largest_component < before.present);
        // An isolated incomplete peer has no useful neighbour: stalled,
        // and no path to a seed.
        assert!(after.stalled >= 1);
        assert!(after.seed_reachable < after.downloading);
    }

    #[test]
    fn empty_and_single_peer_edge_cases() {
        let mut swarm = tiny_swarm();
        swarm.reserve_overlay_slack(4);
        for p in 0..12 {
            swarm.depart(p);
        }
        let empty = snapshot(&swarm);
        assert_eq!(empty.present, 0);
        assert_eq!(empty.components, 0);
        assert_eq!(empty.largest_component, 0);
        assert!(fully_connected(&swarm), "vacuously connected");
        let lone = swarm.arrive(200.0, PeerBehavior::Compliant, PieceSet::full(16));
        let single = snapshot(&swarm);
        assert_eq!(single.present, 1);
        assert_eq!(single.components, 1);
        assert_eq!(single.largest_component, 1);
        assert_eq!(single.diameter, 0);
        assert!(fully_connected(&swarm));
        let _ = lone;
    }
}
