//! Continuous-time discrete-event swarm core with heterogeneous peer
//! speeds.
//!
//! The round engine ([`Swarm::round`] and its indexed/parallel variants)
//! forces every peer onto one synchronous clock. Real clients rechoke on
//! wall-clock timers and transfer pieces at rates set by whoever unchoked
//! them, so stratification emerges from *asynchronous* timing — Legout et
//! al. measure clustering over 10-second rechoke intervals, and Xu's
//! multi-class fluid model prices per-bandwidth-class completion times
//! that only a heterogeneous-speed engine can be checked against. This
//! module provides that engine: [`EventEngine`] runs the existing swarm
//! arena under a binary-heap event loop in which rechoke ticks, piece
//! transfers, tracker announces, and session arrivals / departures are
//! timestamped events.
//!
//! # Event model
//!
//! Five event kinds share one priority queue, ordered by
//! `(time, kind, a, b, seq)` with `total_cmp` on time — ties are broken
//! deterministically, never by heap insertion accident:
//!
//! | kind | order | payload |
//! |---|---|---|
//! | transfer | 0 | recipient slot `a`, global edge slot `b`, plan id `tag` |
//! | departure | 1 | peer slot `a`, abort-only flag `b`, generation `tag` |
//! | arrival | 2 | arrival index `a`, chain flag `b` |
//! | rechoke | 3 | peer slot `a`, tick `b`, generation `tag` |
//! | announce | 4 | peer slot `a`, generation `tag` |
//!
//! The kind order at an equal timestamp mirrors one session round: the
//! closing interval's transfers land first, then departures and arrivals
//! edit the membership, then the new interval's rechokes re-plan flows.
//!
//! # Flows, credit, and re-planning
//!
//! Each unchoke plans a constant-rate flow on the recipient-side edge
//! slot (`upload · multiplier · interval / targets`, in kbit per rechoke
//! interval). A transfer event is scheduled for the moment the edge's
//! credit crosses one piece (`duration = piece_size / allocated rate`);
//! whenever a rechoke re-plans the rate, the stale event is invalidated
//! by a fresh *plan id* and the crossing is re-predicted. Fired transfers
//! re-check the settled credit, so an early prediction is a harmless
//! no-op. All internal timestamps are kept in **rechoke-interval units**
//! (tick `k` is exactly the float `k`), which makes interval-boundary
//! arithmetic exact and is the backbone of the synchronous-limit
//! guarantee below.
//!
//! # Determinism contract
//!
//! Every random draw comes from a ChaCha stream keyed by purpose:
//! rechokes reuse the round engine's `(seed, tick, peer)` streams, and
//! churn / announce / arrival draws use per-event streams keyed
//! `(session_seed, event_seq)` where `event_seq` is the global event
//! sequence number assigned at scheduling time. Replays are bit-identical
//! regardless of wall-clock or platform.
//!
//! # Synchronous limit
//!
//! With [`EventTiming::synchronous_limit`] — homogeneous speeds, transfer
//! quantum equal to the rechoke interval — the engine reproduces the
//! round engine **bit-for-bit**: same rechoke RNG streams, the same
//! `upload · round_seconds / targets` share expression, deliveries
//! deposited one add per edge per round in the recipient-major ascending
//! order of `par_delivery`, and piece conversions against the same
//! start-of-round availability / piece snapshots. The differential suite
//! in `tests/` pins this equivalence on full swarm state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::avail::AvailIndex;
use crate::behavior::PeerBehavior;
use crate::observer::{NullObserver, RunObserver};
use crate::piece::PieceSet;
use crate::session::{ArrivalProcess, SessionConfig};
use crate::swarm::{peer_round_rng, PeerId, Swarm};

/// Domain separator for per-event ChaCha streams ("eventseq"): churn,
/// announce, and arrival draws are keyed `(seed ^ SEP, stream = seq)` so
/// they can never collide with the rechoke streams (`peer_round_rng`),
/// the session streams, or the fault plane.
const EVENT_SEQ_SEP: u64 = 0x6576_656e_7473_6571;

/// Per-event RNG: one independent ChaCha stream per scheduled event,
/// keyed by the engine seed and the event's global sequence number.
pub(crate) fn event_seq_rng(seed: u64, seq: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ EVENT_SEQ_SEP);
    rng.set_stream(seq);
    rng
}

/// Transfer completion: credit on an edge crossed one piece (kind 0).
const K_TRANSFER: u8 = 0;
/// Peer departure — churn leave, abort, or seed exodus (kind 1).
const K_DEPART: u8 = 1;
/// Peer arrival via the tracker (kind 2).
const K_ARRIVAL: u8 = 2;
/// Rechoke tick: one peer re-plans its unchokes and flows (kind 3).
const K_RECHOKE: u8 = 3;
/// Tracker announce: a peer below target degree asks for neighbours
/// (kind 4).
const K_ANNOUNCE: u8 = 4;

/// One scheduled event. Ordering is total and deterministic:
/// `(time, kind, a, b, seq)` with `f64::total_cmp` on the timestamp.
#[derive(Debug, Clone, Copy)]
struct Ev {
    /// Timestamp in rechoke-interval units.
    time: f64,
    kind: u8,
    a: u64,
    b: u64,
    /// Guard token: plan id for transfers, peer generation for
    /// departure / rechoke / announce events. Stale events (token
    /// mismatch at fire time) are dropped.
    tag: u64,
    /// Global sequence number, assigned at scheduling time; final
    /// tie-breaker and the per-event RNG stream key.
    seq: u64,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.a.cmp(&other.a))
            .then_with(|| self.b.cmp(&other.b))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Timing axis of the event engine: rechoke cadence, transfer
/// quantization, tracker announce cadence, and per-class speed
/// multipliers.
///
/// Peers are assigned to speed classes round-robin (initial peers by
/// slot, arrivals by arrival order); class `i` uploads at
/// `upload_kbps · speed_multipliers[i]`. One class with multiplier 1.0
/// (the default) keeps the configured capacities untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTiming {
    /// Seconds between a peer's rechoke ticks (Legout et al.'s
    /// wall-clock rechoke period; BitTorrent's classic value is 10 s).
    pub rechoke_interval: f64,
    /// Transfer-completion quantum in seconds: piece-crossing events are
    /// snapped *up* to the next multiple. `None` fires them at the exact
    /// continuous crossing time; `Some(rechoke_interval)` is the
    /// synchronous limit where the engine equals the round engine.
    pub transfer_quantum: Option<f64>,
    /// Seconds between a peer's tracker announces (re-wiring below the
    /// churn target degree); `None` disables periodic announces.
    pub announce_interval: Option<f64>,
    /// Per-class upload-speed multipliers; peers join classes
    /// round-robin. Must be non-empty, finite, and positive.
    pub speed_multipliers: Vec<f64>,
}

impl Default for EventTiming {
    fn default() -> Self {
        EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: None,
            announce_interval: None,
            speed_multipliers: vec![1.0],
        }
    }
}

impl EventTiming {
    /// The synchronous limit: homogeneous speeds, transfer quantum equal
    /// to the rechoke interval set to the round engine's
    /// `round_seconds`. Under this timing the event engine reproduces
    /// the round engine bit-for-bit.
    #[must_use]
    pub fn synchronous_limit(round_seconds: f64) -> Self {
        EventTiming {
            rechoke_interval: round_seconds,
            transfer_quantum: Some(round_seconds),
            announce_interval: None,
            speed_multipliers: vec![1.0],
        }
    }

    /// Validates the timing axis.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: the
    /// rechoke interval, transfer quantum, and announce interval must be
    /// finite and positive, and the multiplier list non-empty with every
    /// entry finite and positive.
    pub fn validate(&self) -> Result<(), String> {
        if !self.rechoke_interval.is_finite() || self.rechoke_interval <= 0.0 {
            return Err(format!(
                "rechoke_interval must be finite and positive, got {}",
                self.rechoke_interval
            ));
        }
        if let Some(q) = self.transfer_quantum {
            if !q.is_finite() || q <= 0.0 {
                return Err(format!(
                    "transfer_quantum must be finite and positive, got {q}"
                ));
            }
        }
        if let Some(a) = self.announce_interval {
            if !a.is_finite() || a <= 0.0 {
                return Err(format!(
                    "announce_interval must be finite and positive, got {a}"
                ));
            }
        }
        if self.speed_multipliers.is_empty() {
            return Err("speed_multipliers must not be empty".into());
        }
        for &m in &self.speed_multipliers {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!(
                    "speed multipliers must be finite and positive, got {m}"
                ));
            }
        }
        Ok(())
    }
}

/// One download completion under the event clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// Arena slot of the completing peer.
    pub slot: u32,
    /// Speed class of the completing peer.
    pub class: u32,
    /// Arrival time in seconds (0 for initial peers).
    pub arrival_time: f64,
    /// Completion time in seconds.
    pub completion_time: f64,
    /// Completion time in rechoke-interval units, rounded up — equals
    /// the round-engine completion round in the synchronous limit.
    pub completion_round: u64,
}

/// Cumulative event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Peers admitted by arrival events.
    pub arrivals: u64,
    /// Peers removed by departure events (leaves, aborts, exodus).
    pub departures: u64,
    /// Piece-transfer crossings fired (stale plans dispatch but are
    /// dropped uncounted).
    pub transfers: u64,
    /// Rechoke ticks fired.
    pub rechokes: u64,
    /// Tracker announces fired.
    pub announces: u64,
    /// Total events dispatched.
    pub events: u64,
}

/// Continuous-time discrete-event engine over a [`Swarm`] arena.
///
/// Construct with [`EventEngine::new`], then drive with
/// [`EventEngine::run_sync_rounds`] (tick-aligned horizons, comparable
/// round-for-round with the round engine) or [`EventEngine::run_for`]
/// (arbitrary horizons in seconds). The two driving styles cannot be
/// mixed on one engine. The wrapped swarm stays inspectable through
/// every public accessor; its own `round()` methods must not be called
/// while the engine owns it (the engine never calls them, so
/// `round_count()` stays 0 and completion rounds are stamped from event
/// time).
#[derive(Debug, Clone)]
pub struct EventEngine {
    swarm: Swarm,
    timing: EventTiming,
    churn: Option<SessionConfig>,
    /// Transfer quantum in rechoke-interval units (1.0 in the
    /// synchronous limit — exactly, since it is computed as `q / q`).
    quantum_intervals: Option<f64>,
    /// Announce interval in rechoke-interval units.
    announce_intervals: Option<f64>,
    heap: BinaryHeap<Reverse<Ev>>,
    /// Current time in rechoke-interval units.
    clock: f64,
    /// Next global event sequence number.
    seq: u64,
    /// Next transfer plan id (0 is reserved for "no plan").
    next_plan_id: u64,
    /// Tick-aligned rounds driven so far by `run_sync_rounds`.
    rounds_run: u64,
    /// Whether `run_for` has been used (excludes `run_sync_rounds`).
    continuous: bool,

    // Per-edge state, indexed by global edge slot on the *recipient*
    // side (the slot in the downloader's row pointing back at the
    // sender, so `edge_target` of the slot is the sender).
    /// Planned rate in kbit per rechoke interval (0 = choked).
    flow: Vec<f64>,
    /// Whether the planned flow fills a TFT slot (vs optimistic).
    ftft: Vec<bool>,
    /// Settled kbit toward the next piece conversion.
    credit: Vec<f64>,
    /// Settled kbit received over the current interval — the rate signal
    /// the next rechoke ranks by (the event-clock `received_prev`).
    window: Vec<f64>,
    /// Settled download kbit awaiting deposit into the recipient's
    /// totals (flushed one add per edge at the recipient's tick, so the
    /// accumulation order matches the round engine's delivery pass).
    pend_down: Vec<f64>,
    /// TFT share of `pend_down`.
    pend_tft: Vec<f64>,
    /// Time (interval units) up to which the edge has been settled.
    last_settle: Vec<f64>,
    /// Live plan id (0 = none); transfer events carry the id they were
    /// scheduled under and fire only if it still matches.
    plan_id: Vec<u64>,

    // Per-peer state, indexed by arena slot.
    /// Speed class (round-robin over `timing.speed_multipliers`).
    class: Vec<u32>,
    /// Membership generation; bumped on departure so queued events
    /// addressed to a previous occupant of the slot are dropped.
    generation: Vec<u64>,
    /// Sender piece snapshot taken at the peer's last rechoke — the
    /// event-clock `pieces_prev` that piece picks draw from.
    plan_pieces: Vec<PieceSet>,
    /// Arrival time in interval units (0 for initial peers).
    arrival_time: Vec<f64>,
    /// Position in `present_slots` (`u32::MAX` when absent).
    slot_pos: Vec<u32>,
    /// Present arena slots, swap-removed on departure (tracker
    /// candidate list).
    present_slots: Vec<u32>,

    /// Availability snapshot refreshed on timestamp advance after any
    /// rechoke — the event-clock `avail_prev` that piece picks draw
    /// from.
    snapshot: AvailIndex,
    snapshot_dirty: bool,

    // Reusable scratch.
    targets: Vec<(u32, bool)>,
    picks: Vec<u64>,
    wire_scratch: Vec<u32>,

    /// Arrivals admitted so far (drives round-robin class assignment).
    arrival_counter: u64,
    /// Arrival events scheduled so far (tie-break payload).
    arrivals_pushed: u64,
    completions: Vec<CompletionRecord>,
    stats: EventStats,
}

impl EventEngine {
    /// Wraps `swarm` in an event engine with the given timing axis and
    /// optional open-membership churn (arrival process, departure rules,
    /// and tracker wiring reuse the session vocabulary).
    ///
    /// # Panics
    ///
    /// Panics if the swarm runs fluid content (the event clock needs
    /// piece-grained transfers), if `timing` fails validation, or if a
    /// provided churn config fails validation.
    #[must_use]
    pub fn new(mut swarm: Swarm, timing: EventTiming, churn: Option<SessionConfig>) -> Self {
        assert!(
            !swarm.config().fluid_content,
            "event engine requires piece-mode content"
        );
        if let Err(e) = timing.validate() {
            panic!("invalid event timing: {e}");
        }
        if let Some(ch) = &churn {
            if let Err(e) = ch.validate() {
                panic!("invalid churn config: {e}");
            }
            swarm.reserve_overlay_slack(ch.target_degree.max(4));
        }
        let n = swarm.peer_count();
        let m = swarm.edge_arena_len();
        let interval = timing.rechoke_interval;
        let quantum_intervals = timing.transfer_quantum.map(|q| q / interval);
        let announce_intervals = timing.announce_interval.map(|a| a / interval);
        let snapshot = swarm.avail_index().clone();
        let mut engine = EventEngine {
            swarm,
            timing,
            churn,
            quantum_intervals,
            announce_intervals,
            heap: BinaryHeap::new(),
            clock: 0.0,
            seq: 0,
            next_plan_id: 0,
            rounds_run: 0,
            continuous: false,
            flow: vec![0.0; m],
            ftft: vec![false; m],
            credit: vec![0.0; m],
            window: vec![0.0; m],
            pend_down: vec![0.0; m],
            pend_tft: vec![0.0; m],
            last_settle: vec![0.0; m],
            plan_id: vec![0; m],
            class: vec![0; n],
            generation: vec![0; n],
            plan_pieces: Vec::with_capacity(n),
            arrival_time: vec![0.0; n],
            slot_pos: vec![u32::MAX; n],
            present_slots: Vec::with_capacity(n),
            snapshot,
            snapshot_dirty: false,
            targets: Vec::new(),
            picks: Vec::new(),
            wire_scratch: Vec::new(),
            arrival_counter: 0,
            arrivals_pushed: 0,
            completions: Vec::new(),
            stats: EventStats::default(),
        };
        let classes = engine.timing.speed_multipliers.len() as u32;
        for (p, c) in engine.class.iter_mut().enumerate() {
            *c = p as u32 % classes;
        }
        for p in 0..n {
            engine.plan_pieces.push(engine.swarm.pieces_at(p).clone());
            if engine.swarm.is_present(p) {
                engine.slot_pos[p] = engine.present_slots.len() as u32;
                engine.present_slots.push(p as u32);
            }
        }
        engine.schedule_genesis();
        engine
    }

    /// Queues the genesis events: tick-0 rechokes for every present
    /// peer, then the churn plane (first Poisson gap or the burst/trace
    /// schedule, seed exodus, abort timers) and periodic announces.
    fn schedule_genesis(&mut self) {
        let n = self.swarm.peer_count();
        for p in 0..n {
            if self.swarm.is_present(p) {
                self.push(0.0, K_RECHOKE, p as u64, 0, self.generation[p]);
            }
        }
        let Some(ch) = self.churn.clone() else {
            return;
        };
        let seed = ch.session_seed;
        match &ch.arrival {
            ArrivalProcess::None => {}
            ArrivalProcess::Poisson { rate } => {
                if *rate > 0.0 {
                    let sq = self.alloc_seq();
                    let mut rng = event_seq_rng(seed, sq);
                    let gap = exp_gap(&mut rng, 1.0 / rate);
                    let idx = self.arrival_pushed();
                    self.push(gap, K_ARRIVAL, idx, 1, 0);
                }
            }
            ArrivalProcess::Burst { round, count } => {
                for _ in 0..*count {
                    let idx = self.arrival_pushed();
                    self.push(*round as f64, K_ARRIVAL, idx, 0, 0);
                }
            }
            ArrivalProcess::Trace { arrivals } => {
                for &(round, count) in arrivals {
                    for _ in 0..count {
                        let idx = self.arrival_pushed();
                        self.push(round as f64, K_ARRIVAL, idx, 0, 0);
                    }
                }
            }
        }
        if let Some(exodus) = ch.departure.seed_exodus_round {
            for p in 0..n {
                if self.swarm.is_present(p) && self.swarm.peer(p).is_original_seed() {
                    self.push(exodus as f64, K_DEPART, p as u64, 0, self.generation[p]);
                }
            }
        }
        if ch.departure.abort_prob > 0.0 {
            for p in 0..n {
                if self.swarm.is_present(p) && !self.swarm.pieces_at(p).is_complete() {
                    let sq = self.alloc_seq();
                    let mut rng = event_seq_rng(seed, sq);
                    let gap = round_prob_gap(&mut rng, ch.departure.abort_prob);
                    self.push(gap, K_DEPART, p as u64, 1, self.generation[p]);
                }
            }
        }
        if let Some(ai) = self.announce_intervals {
            for p in 0..n {
                if self.swarm.is_present(p) {
                    self.push(ai, K_ANNOUNCE, p as u64, 0, self.generation[p]);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Driving.
    // ------------------------------------------------------------------

    /// Advances the engine by `rounds` tick-aligned rounds: every event
    /// up to the horizon fires, transfers *at* the horizon land (they
    /// are the closing interval's deliveries), and all remaining
    /// per-edge credit is settled and deposited. After `k` calls
    /// totalling `K` rounds the wrapped swarm state is directly
    /// comparable with a round-engine swarm run for `K` rounds.
    ///
    /// # Panics
    ///
    /// Panics if [`EventEngine::run_for`] was already used on this
    /// engine.
    pub fn run_sync_rounds(&mut self, rounds: u64) {
        self.run_sync_rounds_observed(rounds, &NullObserver);
    }

    /// [`run_sync_rounds`](Self::run_sync_rounds) with a [`RunObserver`]
    /// tap. Observers are pure taps: attaching one changes no engine
    /// state and consumes no randomness. Hook times are τ in
    /// rechoke-interval units; the `transfer` hook fires per credit
    /// *settlement* with the settled kilobits (the event engine's
    /// continuous analogue of the round engine's per-round deliveries).
    /// A disabled observer dispatches to the crate's own non-generic
    /// path, so out-of-crate callers pay no re-instantiation penalty.
    ///
    /// # Panics
    ///
    /// Panics if [`EventEngine::run_for`] was already used on this
    /// engine.
    pub fn run_sync_rounds_with<O: RunObserver>(&mut self, rounds: u64, obs: &O) {
        if !O::ENABLED {
            return self.run_sync_rounds(rounds);
        }
        self.run_sync_rounds_observed(rounds, obs);
    }

    fn run_sync_rounds_observed<O: RunObserver>(&mut self, rounds: u64, obs: &O) {
        assert!(
            !self.continuous,
            "cannot mix run_sync_rounds with run_for on one engine"
        );
        self.rounds_run += rounds;
        let tau_end = self.rounds_run as f64;
        self.pump(tau_end, false, obs);
        self.flush_all(tau_end, obs);
        self.clock = tau_end;
    }

    /// Advances the engine by `seconds` of simulated time (any horizon,
    /// not necessarily tick-aligned), firing every event inside the
    /// window and settling all credit at its end.
    ///
    /// # Panics
    ///
    /// Panics if [`EventEngine::run_sync_rounds`] was already used on
    /// this engine.
    pub fn run_for(&mut self, seconds: f64) {
        self.run_for_observed(seconds, &NullObserver);
    }

    /// [`run_for`](Self::run_for) with a [`RunObserver`] tap (see
    /// [`run_sync_rounds_with`](Self::run_sync_rounds_with) for the hook
    /// semantics). A disabled observer dispatches to the crate's own
    /// non-generic path.
    ///
    /// # Panics
    ///
    /// Panics if [`EventEngine::run_sync_rounds`] was already used on
    /// this engine.
    pub fn run_for_with<O: RunObserver>(&mut self, seconds: f64, obs: &O) {
        if !O::ENABLED {
            return self.run_for(seconds);
        }
        self.run_for_observed(seconds, obs);
    }

    fn run_for_observed<O: RunObserver>(&mut self, seconds: f64, obs: &O) {
        assert!(
            self.rounds_run == 0,
            "cannot mix run_for with run_sync_rounds on one engine"
        );
        self.continuous = true;
        let tau_end = self.clock + seconds / self.timing.rechoke_interval;
        self.pump(tau_end, true, obs);
        self.flush_all(tau_end, obs);
        self.clock = tau_end;
    }

    /// Pops and dispatches events up to `tau_end`. With
    /// `inclusive = false`, non-transfer events *at* the horizon stay
    /// queued (they belong to the next round); transfers at the horizon
    /// fire, because they deliver the closing interval's flows.
    fn pump<O: RunObserver>(&mut self, tau_end: f64, inclusive: bool, obs: &O) {
        while let Some(&Reverse(head)) = self.heap.peek() {
            if head.time > tau_end {
                break;
            }
            if !inclusive && head.time == tau_end && head.kind != K_TRANSFER {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event");
            if ev.time > self.clock {
                if self.snapshot_dirty {
                    self.snapshot.clone_from(self.swarm.avail_index());
                    self.snapshot_dirty = false;
                }
                self.clock = ev.time;
            }
            self.stats.events += 1;
            match ev.kind {
                K_TRANSFER => {
                    self.fire_transfer(ev.a as usize, ev.b as usize, ev.tag, ev.time, obs);
                }
                K_DEPART => self.fire_departure(ev.a as usize, ev.tag, ev.b == 1, ev.time, obs),
                K_ARRIVAL => self.fire_arrival(ev.b == 1, ev.seq, ev.time, obs),
                K_RECHOKE => self.fire_rechoke(ev.a as usize, ev.b, ev.tag, ev.time, obs),
                K_ANNOUNCE => self.fire_announce(ev.a as usize, ev.tag, ev.seq, ev.time, obs),
                other => unreachable!("unknown event kind {other}"),
            }
        }
    }

    // ------------------------------------------------------------------
    // Settlement.
    // ------------------------------------------------------------------

    /// Settles edge `e` up to `tau`: accrues `flow · elapsed` into the
    /// edge's credit, rate window, and pending-deposit accumulators, and
    /// deposits the sender's upload totals immediately (sender-side
    /// addends within one interval are equal, so their order cannot
    /// matter; recipient-side deposits are deferred to `deposit_row` to
    /// preserve the round engine's accumulation order).
    fn settle_edge<O: RunObserver>(&mut self, e: usize, tau: f64, obs: &O) {
        let f = self.flow[e];
        if f == 0.0 {
            self.last_settle[e] = tau;
            return;
        }
        let dt = tau - self.last_settle[e];
        self.last_settle[e] = tau;
        if dt <= 0.0 {
            return;
        }
        let delta = f * dt;
        self.credit[e] += delta;
        self.window[e] += delta;
        self.pend_down[e] += delta;
        let is_tft = self.ftft[e];
        if is_tft {
            self.pend_tft[e] += delta;
        }
        let sender = self.swarm.edge_target(e);
        self.swarm.event_deposit_up(sender, delta, is_tft);
        if O::ENABLED {
            // `e` sits in the recipient's row; its reverse slot's target
            // is the row owner.
            let recipient = self.swarm.edge_target(self.swarm.edge_rev(e));
            obs.transfer(tau, sender, recipient, delta, is_tft);
        }
    }

    /// Settles every edge of `q`'s row to `tau` and flushes the pending
    /// download deposits — one add per edge in ascending slot order,
    /// reproducing the delivery pass's recipient-major accumulation.
    fn deposit_row<O: RunObserver>(&mut self, q: PeerId, tau: f64, obs: &O) {
        let (base, end) = self.swarm.row_bounds(q);
        for e in base..end {
            self.settle_edge(e, tau, obs);
            let pd = self.pend_down[e];
            if pd == 0.0 {
                continue;
            }
            let pt = self.pend_tft[e];
            self.pend_down[e] = 0.0;
            self.pend_tft[e] = 0.0;
            self.swarm.event_deposit_down(q, pd, pt);
        }
    }

    /// Settles and flushes every present peer's row at `tau` (horizon
    /// barrier for the driving methods), in ascending slot order.
    fn flush_all<O: RunObserver>(&mut self, tau: f64, obs: &O) {
        for p in 0..self.swarm.peer_count() {
            if self.swarm.is_present(p) {
                self.deposit_row(p, tau, obs);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    /// Rechoke tick for peer `p`: settle the closing interval, rank by
    /// the receipt window, re-plan outgoing flows at the planned share,
    /// snapshot the peer's pieces, and queue the next tick.
    fn fire_rechoke<O: RunObserver>(&mut self, p: PeerId, tick: u64, gen: u64, tau: f64, obs: &O) {
        if self.generation[p] != gen || !self.swarm.is_present(p) {
            return;
        }
        self.stats.rechokes += 1;
        if O::ENABLED {
            obs.rechoke_tick(tau, p);
        }
        self.deposit_row(p, tau, obs);
        let config = self.swarm.config();
        let cfg_seed = config.seed;
        let rotate = tick.is_multiple_of(u64::from(config.optimistic_period));
        let mut rng = peer_round_rng(cfg_seed, tick, self.swarm.stream_of(p));
        let mut targets = std::mem::take(&mut self.targets);
        self.swarm
            .event_rechoke(p, &mut rng, rotate, &self.window, &mut targets);
        // Reset this sender's previous plan: settle each outgoing edge
        // before overwriting its rate (settle-before-replan keeps
        // same-timestamp rechoke order immaterial), then invalidate any
        // scheduled crossings.
        let (base, end) = self.swarm.row_bounds(p);
        for e in base..end {
            let er = self.swarm.edge_rev(e);
            self.settle_edge(er, tau, obs);
            self.flow[er] = 0.0;
            self.ftft[er] = false;
            self.plan_id[er] = 0;
        }
        // The receipt window rolls over at the tick, after ranking.
        for e in base..end {
            self.window[e] = 0.0;
        }
        if !targets.is_empty() {
            let mult = self.timing.speed_multipliers[self.class[p] as usize];
            let share = self.swarm.peer(p).upload_kbps() * mult * self.timing.rechoke_interval
                / targets.len() as f64;
            for &(k, is_tft) in &targets {
                let e = base + k as usize;
                let er = self.swarm.edge_rev(e);
                let q = self.swarm.edge_target(e);
                self.flow[er] = share;
                self.ftft[er] = is_tft;
                self.next_plan_id += 1;
                self.plan_id[er] = self.next_plan_id;
                self.schedule_crossing(q, er, tau);
                if O::ENABLED {
                    obs.unchoke(tau, p, q, !is_tft);
                }
            }
        }
        self.targets = targets;
        self.plan_pieces[p].clone_from(self.swarm.pieces_at(p));
        self.snapshot_dirty = true;
        self.push((tick + 1) as f64, K_RECHOKE, p as u64, tick + 1, gen);
    }

    /// Transfer event on edge `e` into recipient `q`: settle, convert
    /// every whole piece of credit into rarest-first picks against the
    /// availability / sender snapshots, and re-predict the next
    /// crossing. Stale plans (tag mismatch) are dropped unfired.
    fn fire_transfer<O: RunObserver>(&mut self, q: PeerId, e: usize, tag: u64, tau: f64, obs: &O) {
        if tag == 0 || self.plan_id[e] != tag {
            return;
        }
        self.stats.transfers += 1;
        self.settle_edge(e, tau, obs);
        let piece_size = self.swarm.config().piece_size_kbit;
        // Quantized crossings re-check exactly (the synchronous limit
        // must match the round engine's exact comparison); continuous
        // crossings accept an FP-relative shortfall, otherwise a
        // prediction that settles epsilon short of a piece would
        // re-predict a crossing at a time that cannot advance.
        let threshold = if self.quantum_intervals.is_some() {
            piece_size
        } else {
            piece_size * (1.0 - 1e-9)
        };
        if self.credit[e] >= threshold {
            let sender = self.swarm.edge_target(e);
            let want = (self.credit[e] / piece_size) as usize + 2;
            let mut picks = std::mem::take(&mut self.picks);
            self.swarm.event_batch_picks(
                &self.snapshot,
                q,
                &self.plan_pieces[sender],
                want,
                &mut picks,
            );
            let stamp = round_equiv(tau);
            let mut used = 0;
            while self.credit[e] >= threshold {
                let Some(&packed) = picks.get(used) else {
                    break;
                };
                used += 1;
                let piece = (packed & u64::from(u32::MAX)) as usize;
                self.credit[e] -= piece_size;
                if O::ENABLED {
                    obs.piece_converted(tau, q, piece);
                }
                if self.swarm.event_convert_piece(q, piece, stamp) {
                    self.on_completion(q, tau, stamp, obs);
                }
            }
            self.picks = picks;
        }
        if self.flow[e] > 0.0 && self.credit[e] < threshold {
            self.schedule_crossing(q, e, tau);
        }
    }

    /// Predicts when edge `e`'s credit crosses one piece under its
    /// current flow and queues the transfer event — at the exact
    /// continuous crossing, or snapped up to the next transfer-quantum
    /// multiple. A fired event re-checks the settled credit, so an
    /// early (FP-pessimistic) prediction self-corrects.
    fn schedule_crossing(&mut self, q: PeerId, e: usize, tau: f64) {
        let f = self.flow[e];
        if f <= 0.0 {
            return;
        }
        let piece_size = self.swarm.config().piece_size_kbit;
        let need = (piece_size - self.credit[e]).max(0.0);
        let raw = tau + need / f;
        let time = match self.quantum_intervals {
            Some(qu) => {
                // In the synchronous limit `need <= share` exactly, so
                // `raw <= tau + 1` and the rounded crossing never lands
                // later than the round engine's delivery tick.
                let mut m = (raw / qu - 1e-9).ceil();
                if m * qu <= tau {
                    m = (tau / qu + 1e-9).floor() + 1.0;
                }
                m * qu
            }
            None => raw.max(tau),
        };
        let tag = self.plan_id[e];
        self.push(time, K_TRANSFER, q as u64, e as u64, tag);
    }

    /// Completion bookkeeping: record the event, then draw the churn
    /// departure plan (leave immediately, or linger as a seed with a
    /// per-interval leave probability) from a fresh per-event stream.
    fn on_completion<O: RunObserver>(&mut self, q: PeerId, tau: f64, stamp: u64, obs: &O) {
        if O::ENABLED {
            obs.completed(tau, q);
        }
        let interval = self.timing.rechoke_interval;
        self.completions.push(CompletionRecord {
            slot: q as u32,
            class: self.class[q],
            arrival_time: self.arrival_time[q] * interval,
            completion_time: tau * interval,
            completion_round: stamp,
        });
        let (leave_p, linger_p, seed) = match &self.churn {
            Some(ch) => (
                ch.departure.leave_on_completion,
                ch.departure.seed_leave_prob,
                ch.session_seed,
            ),
            None => return,
        };
        if leave_p <= 0.0 && linger_p <= 0.0 {
            return;
        }
        let gen = self.generation[q];
        let sq = self.alloc_seq();
        let mut rng = event_seq_rng(seed, sq);
        if leave_p > 0.0 && rng.gen_bool(leave_p) {
            self.push(tau, K_DEPART, q as u64, 0, gen);
        } else if linger_p > 0.0 {
            let gap = round_prob_gap(&mut rng, linger_p);
            self.push(tau + gap, K_DEPART, q as u64, 0, gen);
        }
    }

    /// Departure of peer `d`: settle and flush its row, detach every
    /// edge (mirroring the swap-moves on the engine's per-edge arrays),
    /// and remove the peer. `only_if_incomplete` marks abort timers,
    /// which lapse once the download finished.
    fn fire_departure<O: RunObserver>(
        &mut self,
        d: PeerId,
        gen: u64,
        only_if_incomplete: bool,
        tau: f64,
        obs: &O,
    ) {
        if self.generation[d] != gen || !self.swarm.is_present(d) {
            return;
        }
        if only_if_incomplete && self.swarm.pieces_at(d).is_complete() {
            return;
        }
        self.stats.departures += 1;
        if O::ENABLED {
            obs.departure(tau, d);
        }
        self.deposit_row(d, tau, obs);
        while self.swarm.degree(d) > 0 {
            let k = self.swarm.degree(d) - 1;
            self.detach_edge(d, k, tau, obs);
        }
        self.swarm.depart(d);
        let pos = self.slot_pos[d] as usize;
        self.present_slots.swap_remove(pos);
        if pos < self.present_slots.len() {
            let moved = self.present_slots[pos] as usize;
            self.slot_pos[moved] = pos as u32;
        }
        self.slot_pos[d] = u32::MAX;
        self.generation[d] = self.generation[d].wrapping_add(1);
    }

    /// Detaches the edge at local slot `k` of `p`'s row, mirroring
    /// [`Swarm::remove_edge_at`]'s q-side-then-p-side swap-moves on the
    /// engine's per-edge arrays. Both directions are settled and their
    /// pending deposits flushed first (the endpoints keep what was
    /// already transferred); displaced flowing edges get a fresh plan id
    /// and a rescheduled crossing, since their queued events point at
    /// the old slots.
    fn detach_edge<O: RunObserver>(&mut self, p: PeerId, k: usize, tau: f64, obs: &O) {
        let (p_base, p_end) = self.swarm.row_bounds(p);
        let e = p_base + k;
        let q = self.swarm.edge_target(e);
        let er = self.swarm.edge_rev(e);
        let (_, q_end) = self.swarm.row_bounds(q);
        // Settle and flush the dying edge in both directions.
        for slot in [e, er] {
            self.settle_edge(slot, tau, obs);
            let pd = self.pend_down[slot];
            if pd != 0.0 {
                let pt = self.pend_tft[slot];
                self.pend_down[slot] = 0.0;
                self.pend_tft[slot] = 0.0;
                let owner = if slot == e { p } else { q };
                self.swarm.event_deposit_down(owner, pd, pt);
            }
        }
        // Mirror the q-side swap-move (q's last live edge into `er`).
        let q_last = q_end - 1;
        if er != q_last {
            self.move_edge_slot(q_last, er, q, tau);
        }
        self.clear_engine_slot(q_last);
        // Mirror the p-side swap-move (p's last live edge into `e`).
        let p_last = p_end - 1;
        if e != p_last {
            self.move_edge_slot(p_last, e, p, tau);
        }
        self.clear_engine_slot(p_last);
        self.swarm.remove_edge_at(p, k);
    }

    /// Moves per-edge engine state from `src` to `dst` (both in
    /// `owner`'s row) during a swap-remove. A flowing moved edge gets a
    /// fresh plan id and a rescheduled crossing: its queued transfer
    /// events carry the old slot index and must die.
    fn move_edge_slot(&mut self, src: usize, dst: usize, owner: PeerId, tau: f64) {
        self.flow[dst] = self.flow[src];
        self.ftft[dst] = self.ftft[src];
        self.credit[dst] = self.credit[src];
        self.window[dst] = self.window[src];
        self.pend_down[dst] = self.pend_down[src];
        self.pend_tft[dst] = self.pend_tft[src];
        self.last_settle[dst] = self.last_settle[src];
        if self.flow[dst] > 0.0 {
            self.next_plan_id += 1;
            self.plan_id[dst] = self.next_plan_id;
            self.schedule_crossing(owner, dst, tau);
        } else {
            self.plan_id[dst] = 0;
        }
    }

    /// Zeroes all engine state of a vacated edge slot.
    fn clear_engine_slot(&mut self, e: usize) {
        self.flow[e] = 0.0;
        self.ftft[e] = false;
        self.credit[e] = 0.0;
        self.window[e] = 0.0;
        self.pend_down[e] = 0.0;
        self.pend_tft[e] = 0.0;
        self.plan_id[e] = 0;
    }

    /// Arrival event: draw the newcomer's initial pieces from its
    /// per-event stream, admit it into the arena, wire it to shuffled
    /// tracker candidates, arm its churn timers, and align its first
    /// rechoke to the tick grid. Poisson arrivals chain the next
    /// inter-arrival gap from the same stream.
    fn fire_arrival<O: RunObserver>(&mut self, chain: bool, seq: u64, tau: f64, obs: &O) {
        let (upload, completion, target, abort_p, linger_p, seed, rate, cap) = match &self.churn {
            Some(ch) => (
                ch.arrival_upload_kbps,
                ch.arrival_completion,
                ch.target_degree,
                ch.departure.abort_prob,
                ch.departure.seed_leave_prob,
                ch.session_seed,
                match ch.arrival {
                    ArrivalProcess::Poisson { rate } => rate,
                    _ => 0.0,
                },
                ch.peer_list_cap,
            ),
            None => return,
        };
        self.stats.arrivals += 1;
        let mut rng = event_seq_rng(seed, seq);
        let piece_count = self.swarm.config().piece_count;
        let mut pieces = PieceSet::new(piece_count);
        if completion > 0.0 {
            for piece in 0..piece_count {
                if rng.gen_bool(completion) {
                    pieces.insert(piece);
                }
            }
        }
        let complete = pieces.is_complete();
        let slot = self.swarm.arrive(upload, PeerBehavior::Compliant, pieces);
        self.sync_capacity(tau);
        let classes = self.timing.speed_multipliers.len() as u64;
        self.class[slot] = (self.arrival_counter % classes) as u32;
        self.arrival_counter += 1;
        self.arrival_time[slot] = tau;
        self.plan_pieces[slot].clone_from(self.swarm.pieces_at(slot));
        self.slot_pos[slot] = self.present_slots.len() as u32;
        self.present_slots.push(slot as u32);
        // The newcomer changes availability: piece picks after this
        // timestamp must see it.
        self.snapshot_dirty = true;
        let gen = self.generation[slot];
        if O::ENABLED {
            obs.arrival(tau, slot);
        }
        self.wire_shuffled(slot, target, cap, &mut rng, tau);
        if !complete && abort_p > 0.0 {
            let gap = round_prob_gap(&mut rng, abort_p);
            self.push(tau + gap, K_DEPART, slot as u64, 1, gen);
        }
        if complete && linger_p > 0.0 {
            let gap = round_prob_gap(&mut rng, linger_p);
            self.push(tau + gap, K_DEPART, slot as u64, 0, gen);
        }
        // First rechoke on the tick grid: at `tau` itself when the
        // arrival lands on a tick, else at the next tick.
        let rounded = tau.round();
        let tick = if (tau - rounded).abs() < 1e-9 {
            rounded as u64
        } else {
            tau.ceil() as u64
        };
        self.push(tick as f64, K_RECHOKE, slot as u64, tick, gen);
        if let Some(ai) = self.announce_intervals {
            self.push(tau + ai, K_ANNOUNCE, slot as u64, 0, gen);
        }
        if chain && rate > 0.0 {
            let gap = exp_gap(&mut rng, 1.0 / rate);
            let idx = self.arrival_pushed();
            self.push(tau + gap, K_ARRIVAL, idx, 1, 0);
        }
    }

    /// Tracker announce: if the peer sits below the churn target
    /// degree, wire it to shuffled candidates; then queue the next
    /// announce.
    fn fire_announce<O: RunObserver>(&mut self, p: PeerId, gen: u64, seq: u64, tau: f64, obs: &O) {
        if self.generation[p] != gen || !self.swarm.is_present(p) {
            return;
        }
        self.stats.announces += 1;
        if O::ENABLED {
            obs.announce(tau, p);
        }
        let (target, seed, cap) = match &self.churn {
            Some(ch) => (ch.target_degree, ch.session_seed, ch.peer_list_cap),
            None => return,
        };
        if self.swarm.degree(p) < target {
            let mut rng = event_seq_rng(seed, seq);
            self.wire_shuffled(p, target, cap, &mut rng, tau);
        }
        if let Some(ai) = self.announce_intervals {
            self.push(tau + ai, K_ANNOUNCE, p as u64, 0, gen);
        }
    }

    /// One shuffled candidate pass over the present peers: connects
    /// `slot` to candidates in shuffled order until it reaches `target`
    /// degree (capacity and duplicate edges are rejected by the arena).
    /// A tracker peer-list cap limits the pass to the first `cap`
    /// shuffled candidates — i.e. the uniform subset the tracker handed
    /// out; `None` scans the whole list (legacy behaviour, draw-for-draw
    /// identical since the full shuffle happens either way).
    fn wire_shuffled(
        &mut self,
        slot: PeerId,
        target: usize,
        cap: Option<usize>,
        rng: &mut ChaCha8Rng,
        tau: f64,
    ) {
        let mut cands = std::mem::take(&mut self.wire_scratch);
        cands.clear();
        cands.extend_from_slice(&self.present_slots);
        cands.shuffle(rng);
        let handed = cap.map_or(cands.len(), |c| c.min(cands.len()));
        for &c in &cands[..handed] {
            if self.swarm.degree(slot) >= target {
                break;
            }
            let q = c as usize;
            if q == slot {
                continue;
            }
            self.connect_mirrored(slot, q, tau);
        }
        self.wire_scratch = cands;
    }

    /// Connects `p`–`q` in the arena and initialises the engine state of
    /// the two new edge slots (which sit at the rows' previous ends).
    fn connect_mirrored(&mut self, p: PeerId, q: PeerId, tau: f64) -> bool {
        let ep = self.swarm.row_bounds(p).1;
        let eq = self.swarm.row_bounds(q).1;
        if !self.swarm.connect_peers(p, q) {
            return false;
        }
        for e in [ep, eq] {
            self.clear_engine_slot(e);
            self.last_settle[e] = tau;
        }
        true
    }

    /// Grows the engine's per-peer / per-edge arrays to match the arena
    /// after an arrival (which may have appended slots or overlay rows).
    fn sync_capacity(&mut self, tau: f64) {
        let n = self.swarm.peer_count();
        let m = self.swarm.edge_arena_len();
        if self.class.len() < n {
            let piece_count = self.swarm.config().piece_count;
            self.class.resize(n, 0);
            self.generation.resize(n, 0);
            self.arrival_time.resize(n, 0.0);
            self.slot_pos.resize(n, u32::MAX);
            self.plan_pieces
                .resize_with(n, || PieceSet::new(piece_count));
        }
        if self.flow.len() < m {
            self.flow.resize(m, 0.0);
            self.ftft.resize(m, false);
            self.credit.resize(m, 0.0);
            self.window.resize(m, 0.0);
            self.pend_down.resize(m, 0.0);
            self.pend_tft.resize(m, 0.0);
            self.last_settle.resize(m, tau);
            self.plan_id.resize(m, 0);
        }
    }

    // ------------------------------------------------------------------
    // Plumbing.
    // ------------------------------------------------------------------

    /// Queues an event, assigning the next global sequence number.
    fn push(&mut self, time: f64, kind: u8, a: u64, b: u64, tag: u64) {
        let seq = self.alloc_seq();
        self.heap.push(Reverse(Ev {
            time,
            kind,
            a,
            b,
            tag,
            seq,
        }));
    }

    /// Allocates a global sequence number (every number keys one
    /// independent ChaCha stream, whether or not an event carries it).
    fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Next arrival index (display / tie-break payload of arrival
    /// events).
    fn arrival_pushed(&mut self) -> u64 {
        let idx = self.arrivals_pushed;
        self.arrivals_pushed += 1;
        idx
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// The wrapped swarm (every public accessor remains valid).
    #[must_use]
    pub fn swarm(&self) -> &Swarm {
        &self.swarm
    }

    /// Cumulative event counters.
    #[must_use]
    pub fn stats(&self) -> &EventStats {
        &self.stats
    }

    /// Download completions recorded so far, in completion order.
    #[must_use]
    pub fn completions(&self) -> &[CompletionRecord] {
        &self.completions
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn clock_seconds(&self) -> f64 {
        self.clock * self.timing.rechoke_interval
    }

    /// The timing axis in force.
    #[must_use]
    pub fn timing(&self) -> &EventTiming {
        &self.timing
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.present_slots.len()
    }

    /// Speed class of peer `p`.
    #[must_use]
    pub fn class_of(&self, p: PeerId) -> u32 {
        self.class[p]
    }

    /// Unwraps the engine, returning the swarm.
    #[must_use]
    pub fn into_swarm(self) -> Swarm {
        self.swarm
    }
}

/// The event time in completed-round units: `ceil(tau)` with an FP
/// slack so tick-boundary timestamps map to their own tick — equals the
/// round engine's `round + 1` completion stamp in the synchronous
/// limit.
fn round_equiv(tau: f64) -> u64 {
    let r = (tau - 1e-9).ceil();
    if r <= 0.0 {
        0
    } else {
        r as u64
    }
}

/// One exponential inter-event gap with the given mean (interval
/// units).
fn exp_gap(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Exponential gap equivalent to a per-interval Bernoulli probability
/// `p`: the continuous-time rate `-ln(1 - p)` per interval preserves
/// the per-interval survival probability of the round-based draw.
fn round_prob_gap(rng: &mut ChaCha8Rng, p: f64) -> f64 {
    if p >= 1.0 {
        return 0.0;
    }
    let rate = -(-p).ln_1p();
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    exp_gap(rng, 1.0 / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwarmConfig;

    fn build_swarm(seed: u64) -> Swarm {
        let config = SwarmConfig::builder()
            .leechers(30)
            .seeds(2)
            .piece_count(48)
            .piece_size_kbit(180.0)
            .mean_neighbors(9.0)
            .initial_completion(0.35)
            .seed(seed)
            .build();
        let uploads: Vec<f64> = (0..32).map(|i| 120.0 + 31.0 * i as f64).collect();
        Swarm::new(config, &uploads)
    }

    #[test]
    fn synchronous_limit_matches_round_engine_state() {
        for seed in [3u64, 11, 2007] {
            let mut oracle = build_swarm(seed);
            let rs = oracle.config().round_seconds;
            let mut engine =
                EventEngine::new(build_swarm(seed), EventTiming::synchronous_limit(rs), None);
            for _ in 0..3 {
                oracle.run_rounds_parallel(7, 4);
                engine.run_sync_rounds(7);
                let ev = engine.swarm();
                for p in 0..oracle.peer_count() {
                    let (a, b) = (oracle.peer(p), ev.peer(p));
                    assert_eq!(a.pieces(), b.pieces(), "pieces diverged at peer {p}");
                    assert_eq!(
                        a.completed_round(),
                        b.completed_round(),
                        "completion stamp diverged at peer {p}"
                    );
                    assert!(
                        a.total_uploaded() == b.total_uploaded()
                            && a.total_downloaded() == b.total_downloaded()
                            && a.tft_uploaded() == b.tft_uploaded()
                            && a.tft_downloaded() == b.tft_downloaded(),
                        "transfer totals diverged at peer {p}"
                    );
                }
                assert_eq!(oracle.availability(), ev.availability());
                assert_eq!(oracle.completed(), ev.completed());
            }
        }
    }

    #[test]
    fn event_determinism_same_seed_same_history() {
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: None,
            announce_interval: Some(25.0),
            speed_multipliers: vec![0.5, 1.0, 2.0],
        };
        let churn = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 0.8 },
            ..SessionConfig::default()
        };
        let run = || {
            let mut engine = EventEngine::new(build_swarm(7), timing.clone(), Some(churn.clone()));
            engine.run_for(400.0);
            (
                *engine.stats(),
                engine.completions().to_vec(),
                engine.present_count(),
            )
        };
        let (s1, c1, n1) = run();
        let (s2, c2, n2) = run();
        assert_eq!(s1, s2);
        assert_eq!(n1, n2);
        assert_eq!(c1.len(), c2.len());
        for (a, b) in c1.iter().zip(&c2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn heterogeneous_speeds_order_class_completion() {
        // Three classes at 1:2:4 speed; faster classes should finish
        // (weakly) earlier on average.
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: None,
            announce_interval: None,
            speed_multipliers: vec![1.0, 2.0, 4.0],
        };
        let mut engine = EventEngine::new(build_swarm(5), timing, None);
        engine.run_for(4000.0);
        let mut sums = [0.0f64; 3];
        let mut counts = [0u32; 3];
        for rec in engine.completions() {
            sums[rec.class as usize] += rec.completion_time;
            counts[rec.class as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every class completes");
        let means: Vec<f64> = (0..3).map(|c| sums[c] / f64::from(counts[c])).collect();
        assert!(
            means[0] > means[2],
            "4x-speed class should finish before 1x ({means:?})"
        );
    }

    #[test]
    fn churned_engine_keeps_arena_invariants() {
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: Some(5.0),
            announce_interval: Some(30.0),
            speed_multipliers: vec![0.5, 2.0],
        };
        let churn = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 1.2 },
            departure: crate::session::DepartureRules {
                leave_on_completion: 0.5,
                seed_leave_prob: 0.1,
                seed_exodus_round: None,
                abort_prob: 0.01,
            },
            ..SessionConfig::default()
        };
        let mut engine = EventEngine::new(build_swarm(13), timing, Some(churn));
        for _ in 0..8 {
            engine.run_for(50.0);
            engine.swarm().check_invariants();
        }
        assert!(engine.stats().arrivals > 0);
        assert!(engine.stats().departures > 0);
    }

    #[test]
    fn timing_validation_rejects_bad_axes() {
        let mut t = EventTiming::default();
        assert!(t.validate().is_ok());
        t.rechoke_interval = 0.0;
        assert!(t.validate().is_err());
        t = EventTiming::default();
        t.speed_multipliers.clear();
        assert!(t.validate().is_err());
        t = EventTiming {
            speed_multipliers: vec![1.0, -2.0],
            ..EventTiming::default()
        };
        assert!(t.validate().is_err());
        t = EventTiming {
            transfer_quantum: Some(f64::NAN),
            ..EventTiming::default()
        };
        assert!(t.validate().is_err());
    }
}
