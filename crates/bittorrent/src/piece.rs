//! Piece sets: fixed-size bitsets over the pieces of the shared file.

use serde::{Deserialize, Serialize};

/// The set of pieces a peer holds, as a packed bitset.
///
/// # Examples
///
/// ```
/// use strat_bittorrent::PieceSet;
///
/// let mut have = PieceSet::new(10);
/// have.insert(3);
/// assert!(have.contains(3));
/// assert_eq!(have.count(), 1);
/// assert!(!have.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PieceSet {
    words: Vec<u64>,
    piece_count: usize,
    held: usize,
}

impl PieceSet {
    /// An empty set over `piece_count` pieces.
    #[must_use]
    pub fn new(piece_count: usize) -> Self {
        Self {
            words: vec![0; piece_count.div_ceil(64)],
            piece_count,
            held: 0,
        }
    }

    /// A complete set (a seed's pieces).
    #[must_use]
    pub fn full(piece_count: usize) -> Self {
        let mut s = Self::new(piece_count);
        for w in 0..s.words.len() {
            s.words[w] = u64::MAX;
        }
        // Clear the bits beyond piece_count.
        let extra = s.words.len() * 64 - piece_count;
        if extra > 0 {
            let last = s.words.len() - 1;
            s.words[last] >>= extra;
        }
        s.held = piece_count;
        s
    }

    /// Total number of pieces in the file.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.piece_count
    }

    /// Number of pieces held.
    #[must_use]
    pub fn count(&self) -> usize {
        self.held
    }

    /// Whether all pieces are held.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.held == self.piece_count
    }

    /// Whether piece `i` is held.
    ///
    /// # Panics
    ///
    /// Panics if `i >= piece_count`.
    #[inline]
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.piece_count, "piece {i} out of range");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds piece `i`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `i >= piece_count`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.piece_count, "piece {i} out of range");
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.held += 1;
        true
    }

    /// Iterates over the held pieces in ascending order (word-parallel).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Removes every piece, keeping the allocation (the membership
    /// layer's slot-recycling path).
    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
        self.held = 0;
    }

    /// Whether `other` holds at least one piece this set lacks — i.e.
    /// whether we are *interested* in `other` (BitTorrent interest).
    #[must_use]
    pub fn is_interested_in(&self, other: &PieceSet) -> bool {
        debug_assert_eq!(self.piece_count, other.piece_count);
        self.words
            .iter()
            .zip(&other.words)
            .any(|(mine, theirs)| theirs & !mine != 0)
    }

    /// Iterates over the pieces `other` has and `self` lacks.
    pub fn missing_from<'a>(&'a self, other: &'a PieceSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.piece_count, other.piece_count);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(move |(w, (mine, theirs))| {
                let mut bits = theirs & !mine;
                core::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                })
            })
    }

    /// Overwrites `self` with `src`'s bits without reallocating (the
    /// parallel round loop's snapshot refresh).
    pub(crate) fn copy_bits_from(&mut self, src: &PieceSet) {
        debug_assert_eq!(self.piece_count, src.piece_count);
        self.words.copy_from_slice(&src.words);
        self.held = src.held;
    }

    /// The **rarest-first** pick: among pieces `other` has and `self`
    /// lacks, the one with the lowest global availability (ties broken by
    /// lowest index, matching a deterministic tie-break).
    #[must_use]
    pub fn rarest_missing_from(&self, other: &PieceSet, availability: &[u32]) -> Option<usize> {
        debug_assert_eq!(availability.len(), self.piece_count);
        self.missing_from(other)
            .min_by_key(|&i| (availability[i], i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let empty = PieceSet::new(70);
        assert_eq!(empty.count(), 0);
        assert!(!empty.is_complete());
        let full = PieceSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.is_complete());
        for i in 0..70 {
            assert!(!empty.contains(i));
            assert!(full.contains(i));
        }
    }

    #[test]
    fn insert_and_double_insert() {
        let mut s = PieceSet::new(5);
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert_eq!(s.count(), 1);
        assert!(s.contains(4));
    }

    #[test]
    fn interest_logic() {
        let mut a = PieceSet::new(4);
        let mut b = PieceSet::new(4);
        a.insert(0);
        b.insert(0);
        // b has nothing a lacks.
        assert!(!a.is_interested_in(&b));
        b.insert(2);
        assert!(a.is_interested_in(&b));
        assert!(!b.is_interested_in(&a));
    }

    #[test]
    fn missing_iteration() {
        let mut a = PieceSet::new(130); // force multiple words
        let mut b = PieceSet::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        a.insert(64);
        let missing: Vec<usize> = a.missing_from(&b).collect();
        assert_eq!(missing, vec![0, 129]);
    }

    #[test]
    fn rarest_first_pick() {
        let a = PieceSet::new(4);
        let mut b = PieceSet::new(4);
        b.insert(1);
        b.insert(3);
        // Piece 3 is rarer (availability 2 vs 5).
        let avail = vec![1, 5, 9, 2];
        assert_eq!(a.rarest_missing_from(&b, &avail), Some(3));
        // Ties break to the lowest index.
        let tie = vec![1, 5, 9, 5];
        assert_eq!(a.rarest_missing_from(&b, &tie), Some(1));
        // Nothing missing → None.
        let full = PieceSet::full(4);
        assert_eq!(full.rarest_missing_from(&b, &avail), None);
    }

    #[test]
    fn full_set_has_no_stray_bits() {
        // 70 pieces = 2 words with 58 bits cleared in the second.
        let full = PieceSet::full(70);
        assert_eq!(full.count(), 70);
        assert_eq!(full.missing_from(&PieceSet::full(70)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_contains_panics() {
        let _ = PieceSet::new(3).contains(3);
    }
}
