//! Piece sets: fixed-size bitsets over the pieces of the shared file.

use serde::{Deserialize, Serialize};

/// Words stored inline before falling back to the heap: 4 × 64 = 256
/// pieces, covering every configuration the experiments run. Keeping the
/// words inside the `PieceSet` struct keeps `Vec<PieceSet>` — the
/// engine's per-peer piece array — contiguous, so the per-edge interest
/// checks and pick prefetches of million-peer rounds cost one cache line
/// per probed peer instead of a pointer chase into a per-peer heap
/// allocation.
const INLINE_WORDS: usize = 4;

/// Bitset word storage: small files live inline, large ones on the heap.
/// The variant is a pure function of the piece count (≤ 256 pieces ⇒
/// inline), so derived equality never compares across variants.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WordStore {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// Serialized as a plain word array, matching the `Vec<u64>` encoding the
/// field had before the inline-storage optimization.
impl Serialize for WordStore {
    fn serialize_json_into(&self, out: &mut String) {
        out.push('[');
        for (i, w) in self.as_full_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.to_string());
        }
        out.push(']');
    }
}

impl WordStore {
    /// The backing words, inline padding included (trailing inline words
    /// beyond the live length are kept zero).
    #[inline]
    fn as_full_slice(&self) -> &[u64] {
        match self {
            WordStore::Inline(words) => words,
            WordStore::Heap(words) => words,
        }
    }
}

/// The set of pieces a peer holds, as a packed bitset.
///
/// # Examples
///
/// ```
/// use strat_bittorrent::PieceSet;
///
/// let mut have = PieceSet::new(10);
/// have.insert(3);
/// assert!(have.contains(3));
/// assert_eq!(have.count(), 1);
/// assert!(!have.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PieceSet {
    words: WordStore,
    piece_count: usize,
    held: usize,
}

impl PieceSet {
    /// An empty set over `piece_count` pieces.
    #[must_use]
    pub fn new(piece_count: usize) -> Self {
        let word_len = piece_count.div_ceil(64);
        let words = if word_len <= INLINE_WORDS {
            WordStore::Inline([0; INLINE_WORDS])
        } else {
            WordStore::Heap(vec![0; word_len])
        };
        Self {
            words,
            piece_count,
            held: 0,
        }
    }

    /// A complete set (a seed's pieces).
    #[must_use]
    pub fn full(piece_count: usize) -> Self {
        let mut s = Self::new(piece_count);
        let words = s.words_mut();
        words.fill(u64::MAX);
        // Mask the tail bits beyond `piece_count` in the last word.
        let tail = piece_count % 64;
        if tail > 0 {
            let last = words.len() - 1;
            words[last] = (1u64 << tail) - 1;
        }
        s.held = piece_count;
        s
    }

    /// The live bitset words (`piece_count.div_ceil(64)` of them) — the
    /// raw operand of the engine's word-parallel kernels.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words.as_full_slice()[..self.piece_count.div_ceil(64)]
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let len = self.piece_count.div_ceil(64);
        match &mut self.words {
            WordStore::Inline(words) => &mut words[..len],
            WordStore::Heap(words) => &mut words[..len],
        }
    }

    /// Total number of pieces in the file.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.piece_count
    }

    /// Number of pieces held.
    #[must_use]
    pub fn count(&self) -> usize {
        self.held
    }

    /// Whether all pieces are held.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.held == self.piece_count
    }

    /// Whether piece `i` is held.
    ///
    /// # Panics
    ///
    /// Panics if `i >= piece_count`.
    #[inline]
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.piece_count, "piece {i} out of range");
        self.words.as_full_slice()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds piece `i`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `i >= piece_count`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.piece_count, "piece {i} out of range");
        let mask = 1u64 << (i % 64);
        let word = match &mut self.words {
            WordStore::Inline(words) => &mut words[i / 64],
            WordStore::Heap(words) => &mut words[i / 64],
        };
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.held += 1;
        true
    }

    /// Iterates over the held pieces in ascending order (word-parallel).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Removes every piece, keeping the allocation (the membership
    /// layer's slot-recycling path).
    pub(crate) fn clear(&mut self) {
        self.words_mut().fill(0);
        self.held = 0;
    }

    /// Whether `other` holds at least one piece this set lacks — i.e.
    /// whether we are *interested* in `other` (BitTorrent interest). One
    /// AND-NOT sweep with early exit on the first non-zero word.
    #[must_use]
    pub fn is_interested_in(&self, other: &PieceSet) -> bool {
        debug_assert_eq!(self.piece_count, other.piece_count);
        self.words()
            .iter()
            .zip(other.words())
            .any(|(mine, theirs)| theirs & !mine != 0)
    }

    /// Iterates over the pieces `other` has and `self` lacks.
    pub fn missing_from<'a>(&'a self, other: &'a PieceSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.piece_count, other.piece_count);
        self.words()
            .iter()
            .zip(other.words())
            .enumerate()
            .flat_map(move |(w, (mine, theirs))| {
                let mut bits = theirs & !mine;
                core::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                })
            })
    }

    /// Iterates over the pieces `self` has and `other` lacks — the dual
    /// of [`PieceSet::missing_from`] (`a.missing_in(b)` ≡
    /// `b.missing_from(a)` with the receiver as the *holder*), so sender
    /// -side kernels can enumerate what they can offer a neighbour with
    /// one ANDNOT sweep.
    pub fn missing_in<'a>(&'a self, other: &'a PieceSet) -> impl Iterator<Item = usize> + 'a {
        other.missing_from(self)
    }

    /// Writes the candidate mask `other & !self` (the pieces `other` can
    /// offer `self`) into `mask` and returns the candidate count — the
    /// word-parallel AND/ANDNOT/`count_ones` sweep the rarest-first pick
    /// prefetch masks its permutation walk with. `mask` must hold at
    /// least the live word count.
    pub(crate) fn candidate_mask_into(&self, other: &PieceSet, mask: &mut [u64]) -> usize {
        debug_assert_eq!(self.piece_count, other.piece_count);
        let mut cand = 0usize;
        for (m, (mine, theirs)) in mask.iter_mut().zip(self.words().iter().zip(other.words())) {
            let bits = theirs & !mine;
            cand += bits.count_ones() as usize;
            *m = bits;
        }
        cand
    }

    /// Overwrites `self` with `src`'s bits without reallocating (the
    /// parallel round loop's snapshot refresh).
    pub(crate) fn copy_bits_from(&mut self, src: &PieceSet) {
        debug_assert_eq!(self.piece_count, src.piece_count);
        self.words_mut().copy_from_slice(src.words());
        self.held = src.held;
    }

    /// The **rarest-first** pick: among pieces `other` has and `self`
    /// lacks, the one with the lowest global availability (ties broken by
    /// lowest index, matching a deterministic tie-break).
    #[must_use]
    pub fn rarest_missing_from(&self, other: &PieceSet, availability: &[u32]) -> Option<usize> {
        debug_assert_eq!(availability.len(), self.piece_count);
        self.missing_from(other)
            .min_by_key(|&i| (availability[i], i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let empty = PieceSet::new(70);
        assert_eq!(empty.count(), 0);
        assert!(!empty.is_complete());
        let full = PieceSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.is_complete());
        for i in 0..70 {
            assert!(!empty.contains(i));
            assert!(full.contains(i));
        }
    }

    #[test]
    fn insert_and_double_insert() {
        let mut s = PieceSet::new(5);
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert_eq!(s.count(), 1);
        assert!(s.contains(4));
    }

    #[test]
    fn interest_logic() {
        let mut a = PieceSet::new(4);
        let mut b = PieceSet::new(4);
        a.insert(0);
        b.insert(0);
        // b has nothing a lacks.
        assert!(!a.is_interested_in(&b));
        b.insert(2);
        assert!(a.is_interested_in(&b));
        assert!(!b.is_interested_in(&a));
    }

    #[test]
    fn missing_iteration() {
        let mut a = PieceSet::new(130); // force multiple words
        let mut b = PieceSet::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        a.insert(64);
        let missing: Vec<usize> = a.missing_from(&b).collect();
        assert_eq!(missing, vec![0, 129]);
        // The dual enumerates the same pieces from the holder's side.
        let offered: Vec<usize> = b.missing_in(&a).collect();
        assert_eq!(offered, vec![0, 129]);
    }

    #[test]
    fn heap_fallback_beyond_inline_capacity() {
        // 300 pieces exceed the 4 inline words; every operation must
        // behave identically on the heap path.
        let mut s = PieceSet::new(300);
        assert!(s.insert(257));
        assert!(s.contains(257));
        assert!(!s.contains(256));
        let full = PieceSet::full(300);
        assert_eq!(full.count(), 300);
        assert!(full.is_complete());
        assert_eq!(s.missing_from(&full).count(), 299);
        assert_eq!(full.missing_in(&s).count(), 299);
    }

    #[test]
    fn candidate_mask_counts_and_bits() {
        let mut mine = PieceSet::new(130);
        let mut theirs = PieceSet::new(130);
        theirs.insert(1);
        theirs.insert(65);
        theirs.insert(129);
        mine.insert(65);
        let mut mask = [0u64; 3];
        let cand = mine.candidate_mask_into(&theirs, &mut mask);
        assert_eq!(cand, 2);
        assert_eq!(mask[0], 1u64 << 1);
        assert_eq!(mask[1], 0);
        assert_eq!(mask[2], 1u64 << 1);
    }

    #[test]
    fn rarest_first_pick() {
        let a = PieceSet::new(4);
        let mut b = PieceSet::new(4);
        b.insert(1);
        b.insert(3);
        // Piece 3 is rarer (availability 2 vs 5).
        let avail = vec![1, 5, 9, 2];
        assert_eq!(a.rarest_missing_from(&b, &avail), Some(3));
        // Ties break to the lowest index.
        let tie = vec![1, 5, 9, 5];
        assert_eq!(a.rarest_missing_from(&b, &tie), Some(1));
        // Nothing missing → None.
        let full = PieceSet::full(4);
        assert_eq!(full.rarest_missing_from(&b, &avail), None);
    }

    #[test]
    fn full_set_has_no_stray_bits() {
        // 70 pieces = 2 words with 58 bits cleared in the second.
        let full = PieceSet::full(70);
        assert_eq!(full.count(), 70);
        assert_eq!(full.missing_from(&PieceSet::full(70)).count(), 0);
        // Word-multiple counts keep every bit of the last word.
        let exact = PieceSet::full(128);
        assert_eq!(exact.count(), 128);
        assert!(exact.is_complete());
        assert!(exact.contains(127));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_contains_panics() {
        let _ = PieceSet::new(3).contains(3);
    }
}
