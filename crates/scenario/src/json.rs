//! JSON round-trip for [`Scenario`]: serialization comes from the serde
//! derives (externally tagged enums, exactly like upstream serde's
//! defaults); deserialization walks the `serde_json::Value` tree produced
//! by the shim parser.

use serde_json::Value;
use strat_core::InitiativeStrategy;

use strat_bittorrent::universe::{CapacitySplit, MembershipModel};

use crate::{
    ArrivalProcess, BehaviorMix, CapacityModel, ChurnModel, DepartureRules, EventTiming, FaultPlan,
    FaultWindow, PreferenceModel, Scenario, ScenarioError, SessionConfig, SwarmParams,
    TopologyModel, UniverseParams,
};

impl Scenario {
    /// Compact JSON encoding of this scenario.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::Serialize::to_json(self)
    }

    /// Pretty-printed JSON encoding (what preset files ship as).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("in-memory serialization cannot fail")
    }

    /// Parses a scenario from its JSON encoding.
    ///
    /// # Examples
    ///
    /// ```
    /// use strat_scenario::{Scenario, TopologyModel};
    ///
    /// let json = r#"{
    ///   "name": "demo", "experiment": "fig3", "seed": 7, "peers": 100,
    ///   "capacity": { "Constant": { "value": 1 } },
    ///   "topology": { "ErdosRenyiMeanDegree": { "d": 10.0 } },
    ///   "preference": "GlobalRank",
    ///   "churn": { "Rate": { "rate": 0.03 } },
    ///   "strategy": "BestMate",
    ///   "swarm": null
    /// }"#;
    /// let scenario = Scenario::from_json(json)?;
    /// assert_eq!(scenario.peers, 100);
    /// assert_eq!(scenario.topology, TopologyModel::ErdosRenyiMeanDegree { d: 10.0 });
    /// // The encoding round-trips losslessly.
    /// assert_eq!(Scenario::from_json(&scenario.to_json())?, scenario);
    /// # Ok::<(), strat_scenario::ScenarioError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON, unknown
    /// variants, or missing/ill-typed fields.
    pub fn from_json(input: &str) -> Result<Self, ScenarioError> {
        let value = serde_json::from_str_value(input)?;
        Self::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        Ok(Self {
            name: string_field(value, "name")?,
            experiment: string_field(value, "experiment")?,
            seed: u64_field(value, "seed")?,
            peers: usize_field(value, "peers")?,
            capacity: CapacityModel::from_value(require(value, "capacity")?)?,
            topology: TopologyModel::from_value(require(value, "topology")?)?,
            preference: PreferenceModel::from_value(require(value, "preference")?)?,
            churn: ChurnModel::from_value(require(value, "churn")?)?,
            strategy: strategy_from_value(require(value, "strategy")?)?,
            swarm: match require(value, "swarm")? {
                Value::Null => None,
                v => Some(SwarmParams::from_value(v)?),
            },
        })
    }
}

impl CapacityModel {
    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let (tag, body) = variant(value, "capacity model")?;
        match tag {
            "Constant" => Ok(CapacityModel::Constant {
                value: f64_field(body, "value")?,
            }),
            "RoundedNormal" => Ok(CapacityModel::RoundedNormal {
                mean: f64_field(body, "mean")?,
                sigma: f64_field(body, "sigma")?,
            }),
            "Uniform" => Ok(CapacityModel::Uniform {
                lo: f64_field(body, "lo")?,
                hi: f64_field(body, "hi")?,
            }),
            "SaroiuByRank" => Ok(CapacityModel::SaroiuByRank),
            "SaroiuShuffled" => Ok(CapacityModel::SaroiuShuffled {
                shuffle_seed: u64_field(body, "shuffle_seed")?,
            }),
            "Explicit" => Ok(CapacityModel::Explicit {
                values: f64_array_field(body, "values")?,
            }),
            other => Err(unknown_variant("capacity model", other)),
        }
    }
}

impl TopologyModel {
    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let (tag, body) = variant(value, "topology model")?;
        match tag {
            "Complete" => Ok(TopologyModel::Complete),
            "ErdosRenyiMeanDegree" => Ok(TopologyModel::ErdosRenyiMeanDegree {
                d: f64_field(body, "d")?,
            }),
            "ErdosRenyiEdgeProbability" => Ok(TopologyModel::ErdosRenyiEdgeProbability {
                p: f64_field(body, "p")?,
            }),
            "Explicit" => {
                let raw = require(body, "edges")?
                    .as_array()
                    .ok_or_else(|| type_error("edges", "array"))?;
                let mut edges = Vec::with_capacity(raw.len());
                for pair in raw {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| type_error("edge", "[u, v] pair"))?;
                    edges.push((
                        pair[0]
                            .as_usize()
                            .ok_or_else(|| type_error("edge endpoint", "index"))?,
                        pair[1]
                            .as_usize()
                            .ok_or_else(|| type_error("edge endpoint", "index"))?,
                    ));
                }
                Ok(TopologyModel::Explicit { edges })
            }
            other => Err(unknown_variant("topology model", other)),
        }
    }
}

impl PreferenceModel {
    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let (tag, body) = variant(value, "preference model")?;
        match tag {
            "GlobalRank" => Ok(PreferenceModel::GlobalRank),
            "GossipEstimated" => Ok(PreferenceModel::GossipEstimated {
                sample_size: usize_field(body, "sample_size")?,
            }),
            "Latency" => Ok(PreferenceModel::Latency {
                span: f64_field(body, "span")?,
            }),
            "BandedRankLatency" => Ok(PreferenceModel::BandedRankLatency {
                class_width: usize_field(body, "class_width")?,
                span: f64_field(body, "span")?,
            }),
            other => Err(unknown_variant("preference model", other)),
        }
    }
}

impl ChurnModel {
    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let (tag, body) = variant(value, "churn model")?;
        match tag {
            "None" => Ok(ChurnModel::None),
            "Rate" => Ok(ChurnModel::Rate {
                rate: f64_field(body, "rate")?,
            }),
            "PoissonPerBaseUnit" => Ok(ChurnModel::PoissonPerBaseUnit {
                events_per_base_unit: f64_field(body, "events_per_base_unit")?,
            }),
            other => Err(unknown_variant("churn model", other)),
        }
    }
}

impl SwarmParams {
    fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let behavior = require(value, "behavior")?;
        Ok(Self {
            seeds: usize_field(value, "seeds")?,
            seed_upload_kbps: f64_field(value, "seed_upload_kbps")?,
            tft_slots: usize_field(value, "tft_slots")?,
            optimistic_slots: usize_field(value, "optimistic_slots")?,
            optimistic_period: u32::try_from(u64_field(value, "optimistic_period")?)
                .map_err(|_| type_error("optimistic_period", "u32"))?,
            piece_count: usize_field(value, "piece_count")?,
            piece_size_kbit: f64_field(value, "piece_size_kbit")?,
            round_seconds: f64_field(value, "round_seconds")?,
            initial_completion: f64_field(value, "initial_completion")?,
            seed_after_completion: bool_field(value, "seed_after_completion")?,
            fluid_content: bool_field(value, "fluid_content")?,
            swarm_seed: u64_field(value, "swarm_seed")?,
            behavior: BehaviorMix {
                free_riders: usize_field(behavior, "free_riders")?,
                altruists: usize_field(behavior, "altruists")?,
            },
            churn: optional_section(value, "churn", session_config_from_value)?,
            faults: optional_section(value, "faults", fault_plan_from_value)?,
            timing: optional_section(value, "timing", event_timing_from_value)?,
            universe: optional_section(value, "universe", universe_params_from_value)?,
        })
    }
}

/// Legacy-tolerant optional swarm sub-section: preset files written
/// before a section existed carry no key at all, and absence — like an
/// explicit `null` — means the section is disabled (closed swarm, no
/// faults, synchronous rounds, single torrent).
fn optional_section<T>(
    value: &Value,
    field: &str,
    parse: impl FnOnce(&Value) -> Result<T, ScenarioError>,
) -> Result<Option<T>, ScenarioError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => parse(v).map(Some),
    }
}

fn universe_params_from_value(value: &Value) -> Result<UniverseParams, ScenarioError> {
    Ok(UniverseParams {
        torrents: usize_field(value, "torrents")?,
        popularity_skew: f64_field(value, "popularity_skew")?,
        membership: membership_from_value(require(value, "membership")?)?,
        split: split_from_value(require(value, "split")?)?,
        class_upload_kbps: f64_array_field(value, "class_upload_kbps")?,
        universe_seed: u64_field(value, "universe_seed")?,
    })
}

fn membership_from_value(value: &Value) -> Result<MembershipModel, ScenarioError> {
    let (tag, body) = variant(value, "membership model")?;
    match tag {
        "Single" => Ok(MembershipModel::Single),
        "Fixed" => Ok(MembershipModel::Fixed {
            extra: usize_field(body, "extra")?,
        }),
        other => Err(unknown_variant("membership model", other)),
    }
}

fn split_from_value(value: &Value) -> Result<CapacitySplit, ScenarioError> {
    let (tag, _) = variant(value, "capacity split")?;
    match tag {
        "EqualShare" => Ok(CapacitySplit::EqualShare),
        "DemandWeighted" => Ok(CapacitySplit::DemandWeighted),
        other => Err(unknown_variant("capacity split", other)),
    }
}

fn event_timing_from_value(value: &Value) -> Result<EventTiming, ScenarioError> {
    let multipliers = require(value, "speed_multipliers")?
        .as_array()
        .ok_or_else(|| type_error("speed_multipliers", "array"))?
        .iter()
        .map(|m| {
            m.as_f64()
                .ok_or_else(|| type_error("speed multiplier", "number"))
        })
        .collect::<Result<Vec<f64>, _>>()?;
    Ok(EventTiming {
        rechoke_interval: f64_field(value, "rechoke_interval")?,
        transfer_quantum: optional_f64_field(value, "transfer_quantum")?,
        announce_interval: optional_f64_field(value, "announce_interval")?,
        speed_multipliers: multipliers,
    })
}

fn optional_f64_field(value: &Value, field: &str) -> Result<Option<f64>, ScenarioError> {
    match require(value, field)? {
        Value::Null => Ok(None),
        v => Ok(Some(
            v.as_f64()
                .ok_or_else(|| type_error(field, "number or null"))?,
        )),
    }
}

fn fault_plan_from_value(value: &Value) -> Result<FaultPlan, ScenarioError> {
    Ok(FaultPlan {
        crash_prob: f64_field(value, "crash_prob")?,
        loss_prob: f64_field(value, "loss_prob")?,
        outages: fault_windows_field(value, "outages")?,
        partitions: fault_windows_field(value, "partitions")?,
        fault_seed: u64_field(value, "fault_seed")?,
    })
}

fn fault_windows_field(value: &Value, field: &str) -> Result<Vec<FaultWindow>, ScenarioError> {
    require(value, field)?
        .as_array()
        .ok_or_else(|| type_error(field, "array"))?
        .iter()
        .map(|w| {
            Ok(FaultWindow {
                start: u64_field(w, "start")?,
                rounds: u64_field(w, "rounds")?,
            })
        })
        .collect()
}

fn session_config_from_value(value: &Value) -> Result<SessionConfig, ScenarioError> {
    let departure = require(value, "departure")?;
    Ok(SessionConfig {
        arrival: arrival_from_value(require(value, "arrival")?)?,
        departure: DepartureRules {
            leave_on_completion: f64_field(departure, "leave_on_completion")?,
            seed_leave_prob: f64_field(departure, "seed_leave_prob")?,
            seed_exodus_round: match require(departure, "seed_exodus_round")? {
                Value::Null => None,
                v => {
                    Some(v.as_u64().ok_or_else(|| {
                        type_error("seed_exodus_round", "unsigned integer or null")
                    })?)
                }
            },
            abort_prob: f64_field(departure, "abort_prob")?,
        },
        arrival_upload_kbps: f64_field(value, "arrival_upload_kbps")?,
        arrival_completion: f64_field(value, "arrival_completion")?,
        target_degree: usize_field(value, "target_degree")?,
        session_seed: u64_field(value, "session_seed")?,
        // Legacy tolerance: pre-batching preset files carry no
        // `batched_wiring` key; absence means the per-arrival path.
        batched_wiring: match value.get("batched_wiring") {
            None | Some(Value::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| type_error("batched_wiring", "bool"))?,
        },
        // Legacy tolerance again: pre-tracker-cap preset files carry no
        // `peer_list_cap` key; absence (like null) means uncapped.
        peer_list_cap: match value.get("peer_list_cap") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|c| usize::try_from(c).ok())
                    .ok_or_else(|| type_error("peer_list_cap", "unsigned integer or null"))?,
            ),
        },
        // Legacy tolerance once more: pre-compaction preset files carry
        // no `compact_threshold` key; absence (like null) never compacts.
        compact_threshold: match value.get("compact_threshold") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| type_error("compact_threshold", "number or null"))?,
            ),
        },
    })
}

fn arrival_from_value(value: &Value) -> Result<ArrivalProcess, ScenarioError> {
    let (tag, body) = variant(value, "arrival process")?;
    match tag {
        "None" => Ok(ArrivalProcess::None),
        "Poisson" => Ok(ArrivalProcess::Poisson {
            rate: f64_field(body, "rate")?,
        }),
        "Burst" => Ok(ArrivalProcess::Burst {
            round: u64_field(body, "round")?,
            count: u32::try_from(u64_field(body, "count")?)
                .map_err(|_| type_error("count", "u32"))?,
        }),
        "Trace" => {
            let raw = require(body, "arrivals")?
                .as_array()
                .ok_or_else(|| type_error("arrivals", "array"))?;
            let mut arrivals = Vec::with_capacity(raw.len());
            for pair in raw {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| type_error("arrival entry", "[round, count] pair"))?;
                arrivals.push((
                    pair[0]
                        .as_u64()
                        .ok_or_else(|| type_error("arrival round", "unsigned integer"))?,
                    u32::try_from(
                        pair[1]
                            .as_u64()
                            .ok_or_else(|| type_error("arrival count", "unsigned integer"))?,
                    )
                    .map_err(|_| type_error("arrival count", "u32"))?,
                ));
            }
            Ok(ArrivalProcess::Trace { arrivals })
        }
        other => Err(unknown_variant("arrival process", other)),
    }
}

fn strategy_from_value(value: &Value) -> Result<InitiativeStrategy, ScenarioError> {
    match value.as_str() {
        Some("BestMate") => Ok(InitiativeStrategy::BestMate),
        Some("Decremental") => Ok(InitiativeStrategy::Decremental),
        Some("Random") => Ok(InitiativeStrategy::Random),
        Some(other) => Err(unknown_variant("initiative strategy", other)),
        None => Err(type_error("strategy", "string")),
    }
}

/// Splits an externally tagged enum value into `(variant, body)`; unit
/// variants are bare strings with a null body.
fn variant<'v>(value: &'v Value, what: &str) -> Result<(&'v str, &'v Value), ScenarioError> {
    static NULL: Value = Value::Null;
    if let Some(tag) = value.as_str() {
        return Ok((tag, &NULL));
    }
    if let Some(map) = value.as_object() {
        if map.len() == 1 {
            let (tag, body) = map.iter().next().expect("len checked");
            return Ok((tag.as_str(), body));
        }
    }
    Err(ScenarioError::Parse(format!(
        "expected an externally tagged {what}, found {value:?}"
    )))
}

fn require<'v>(value: &'v Value, field: &str) -> Result<&'v Value, ScenarioError> {
    value
        .get(field)
        .ok_or_else(|| ScenarioError::Parse(format!("missing field `{field}`")))
}

fn type_error(field: &str, wanted: &str) -> ScenarioError {
    ScenarioError::Parse(format!("field `{field}` must be a {wanted}"))
}

fn string_field(value: &Value, field: &str) -> Result<String, ScenarioError> {
    require(value, field)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| type_error(field, "string"))
}

fn f64_field(value: &Value, field: &str) -> Result<f64, ScenarioError> {
    require(value, field)?
        .as_f64()
        .ok_or_else(|| type_error(field, "number"))
}

fn u64_field(value: &Value, field: &str) -> Result<u64, ScenarioError> {
    require(value, field)?
        .as_u64()
        .ok_or_else(|| type_error(field, "unsigned integer"))
}

fn usize_field(value: &Value, field: &str) -> Result<usize, ScenarioError> {
    require(value, field)?
        .as_usize()
        .ok_or_else(|| type_error(field, "unsigned integer"))
}

fn bool_field(value: &Value, field: &str) -> Result<bool, ScenarioError> {
    require(value, field)?
        .as_bool()
        .ok_or_else(|| type_error(field, "bool"))
}

fn f64_array_field(value: &Value, field: &str) -> Result<Vec<f64>, ScenarioError> {
    require(value, field)?
        .as_array()
        .ok_or_else(|| type_error(field, "array"))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| type_error(field, "number array")))
        .collect()
}

fn unknown_variant(what: &str, tag: &str) -> ScenarioError {
    ScenarioError::Parse(format!("unknown {what} variant `{tag}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwarmParams;

    fn full_scenario() -> Scenario {
        Scenario::new("full", 321)
            .with_seed(u64::MAX - 1)
            .with_experiment("bt1")
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 12.5 })
            .with_capacity(CapacityModel::SaroiuShuffled {
                shuffle_seed: 0x5455,
            })
            .with_preference(PreferenceModel::BandedRankLatency {
                class_width: 10,
                span: 1000.0,
            })
            .with_churn(ChurnModel::Rate { rate: 0.003 })
            .with_strategy(InitiativeStrategy::Random)
            .with_swarm(SwarmParams {
                seeds: 2,
                fluid_content: true,
                behavior: BehaviorMix {
                    free_riders: 4,
                    altruists: 2,
                },
                ..SwarmParams::default()
            })
    }

    #[test]
    fn round_trip_identity() {
        for scenario in [
            Scenario::new("minimal", 10),
            full_scenario(),
            Scenario::new("explicit", 3)
                .with_topology(TopologyModel::Explicit {
                    edges: vec![(0, 1), (1, 2)],
                })
                .with_capacity(CapacityModel::Explicit {
                    values: vec![3.0, 2.0, 2.0],
                })
                .with_preference(PreferenceModel::GossipEstimated { sample_size: 30 })
                .with_churn(ChurnModel::PoissonPerBaseUnit {
                    events_per_base_unit: 2.5,
                }),
        ] {
            let json = scenario.to_json();
            let parsed = Scenario::from_json(&json).expect("round trip parses");
            assert_eq!(parsed, scenario, "round trip for {}", scenario.name);
            // Pretty form parses to the same value.
            assert_eq!(
                Scenario::from_json(&scenario.to_json_pretty()).unwrap(),
                scenario
            );
        }
    }

    #[test]
    fn json_shape_is_externally_tagged() {
        let json = full_scenario().to_json();
        assert!(json.contains("\"capacity\":{\"SaroiuShuffled\":{\"shuffle_seed\":21589}}"));
        assert!(json.contains("\"strategy\":\"Random\""));
        assert!(json.contains("\"churn\":{\"Rate\":{\"rate\":0.003}}"));
    }

    #[test]
    fn missing_and_unknown_fields_error() {
        assert!(matches!(
            Scenario::from_json("{}"),
            Err(ScenarioError::Parse(_))
        ));
        let mut json = full_scenario().to_json();
        json = json.replace("SaroiuShuffled", "Saroiuu");
        assert!(matches!(
            Scenario::from_json(&json),
            Err(ScenarioError::Parse(_))
        ));
        assert!(Scenario::from_json("not json at all").is_err());
    }

    #[test]
    fn churn_section_round_trips() {
        for arrival in [
            ArrivalProcess::None,
            ArrivalProcess::Poisson { rate: 4.5 },
            ArrivalProcess::Burst {
                round: 12,
                count: 300,
            },
            ArrivalProcess::Trace {
                arrivals: vec![(1, 2), (9, 40)],
            },
        ] {
            let scenario = Scenario::new("churny", 40).with_swarm(SwarmParams {
                churn: Some(SessionConfig {
                    arrival,
                    departure: DepartureRules {
                        leave_on_completion: 0.1,
                        seed_leave_prob: 0.25,
                        seed_exodus_round: Some(40),
                        abort_prob: 0.01,
                    },
                    arrival_upload_kbps: 400.0,
                    arrival_completion: 0.05,
                    target_degree: 12,
                    session_seed: 99,
                    batched_wiring: false,
                    peer_list_cap: Some(16),
                    compact_threshold: Some(0.5),
                }),
                ..SwarmParams::default()
            });
            let parsed = Scenario::from_json(&scenario.to_json()).expect("round trip parses");
            assert_eq!(parsed, scenario);
        }
        // `seed_exodus_round: null` round-trips too.
        let scenario = Scenario::new("churny", 10).with_swarm(SwarmParams {
            churn: Some(SessionConfig::default()),
            ..SwarmParams::default()
        });
        assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
    }

    #[test]
    fn faults_section_round_trips() {
        let scenario = Scenario::new("faulty", 30).with_swarm(SwarmParams {
            churn: Some(SessionConfig::default()),
            faults: Some(FaultPlan {
                crash_prob: 0.01,
                loss_prob: 0.05,
                outages: vec![FaultWindow {
                    start: 5,
                    rounds: 3,
                }],
                partitions: vec![
                    FaultWindow {
                        start: 10,
                        rounds: 4,
                    },
                    FaultWindow {
                        start: 30,
                        rounds: 2,
                    },
                ],
                fault_seed: 0xfa17,
            }),
            ..SwarmParams::default()
        });
        let json = scenario.to_json();
        assert!(json.contains("\"faults\":{\"crash_prob\":0.01"));
        let parsed = Scenario::from_json(&json).expect("faults round trip parses");
        assert_eq!(parsed, scenario);
        // Pretty form too.
        assert_eq!(
            Scenario::from_json(&scenario.to_json_pretty()).unwrap(),
            scenario
        );
    }

    #[test]
    fn timing_section_round_trips() {
        for timing in [
            EventTiming::default(),
            EventTiming {
                rechoke_interval: 10.0,
                transfer_quantum: Some(10.0),
                announce_interval: Some(120.0),
                speed_multipliers: vec![0.5, 1.0, 2.0],
            },
        ] {
            let scenario = Scenario::new("timed", 20).with_swarm(SwarmParams {
                timing: Some(timing),
                ..SwarmParams::default()
            });
            let json = scenario.to_json();
            assert!(json.contains("\"timing\":{\"rechoke_interval\":10"));
            let parsed = Scenario::from_json(&json).expect("timing round trip parses");
            assert_eq!(parsed, scenario);
            // Pretty form too.
            assert_eq!(
                Scenario::from_json(&scenario.to_json_pretty()).unwrap(),
                scenario
            );
        }
    }

    #[test]
    fn legacy_swarm_sections_without_timing_parse_to_none() {
        // Pre-event-core preset files carry no `timing` key at all.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams::default());
        let json = scenario.to_json().replace(",\"timing\":null", "");
        assert!(!json.contains("timing"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().timing, None);
    }

    #[test]
    fn legacy_churn_sections_without_batched_wiring_parse_to_false() {
        // Pre-batching preset files carry no `batched_wiring` key.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig::default()),
            ..SwarmParams::default()
        });
        let json = scenario.to_json().replace(",\"batched_wiring\":false", "");
        assert!(!json.contains("batched_wiring"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert!(!parsed.swarm.unwrap().churn.unwrap().batched_wiring);
        // And the explicit true form round-trips.
        let scenario = Scenario::new("batched", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig {
                batched_wiring: true,
                ..SessionConfig::default()
            }),
            ..SwarmParams::default()
        });
        let parsed = Scenario::from_json(&scenario.to_json()).expect("round trip parses");
        assert!(parsed.swarm.unwrap().churn.unwrap().batched_wiring);
    }

    #[test]
    fn legacy_churn_sections_without_peer_list_cap_parse_to_none() {
        // Pre-tracker-cap preset files carry no `peer_list_cap` key.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig::default()),
            ..SwarmParams::default()
        });
        let json = scenario.to_json().replace(",\"peer_list_cap\":null", "");
        assert!(!json.contains("peer_list_cap"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().churn.unwrap().peer_list_cap, None);
        // And the explicit capped form round-trips.
        let scenario = Scenario::new("capped", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig {
                peer_list_cap: Some(8),
                ..SessionConfig::default()
            }),
            ..SwarmParams::default()
        });
        let parsed = Scenario::from_json(&scenario.to_json()).expect("round trip parses");
        assert_eq!(parsed.swarm.unwrap().churn.unwrap().peer_list_cap, Some(8));
    }

    #[test]
    fn legacy_churn_sections_without_compact_threshold_parse_to_none() {
        // Pre-compaction preset files carry no `compact_threshold` key.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig::default()),
            ..SwarmParams::default()
        });
        let json = scenario
            .to_json()
            .replace(",\"compact_threshold\":null", "");
        assert!(!json.contains("compact_threshold"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().churn.unwrap().compact_threshold, None);
        // And the explicit compacting form round-trips.
        let scenario = Scenario::new("compacting", 8).with_swarm(SwarmParams {
            churn: Some(SessionConfig {
                compact_threshold: Some(0.25),
                ..SessionConfig::default()
            }),
            ..SwarmParams::default()
        });
        let parsed = Scenario::from_json(&scenario.to_json()).expect("round trip parses");
        assert_eq!(
            parsed.swarm.unwrap().churn.unwrap().compact_threshold,
            Some(0.25)
        );
    }

    #[test]
    fn universe_section_round_trips() {
        for (membership, split) in [
            (MembershipModel::Single, CapacitySplit::EqualShare),
            (
                MembershipModel::Fixed { extra: 2 },
                CapacitySplit::DemandWeighted,
            ),
        ] {
            let scenario = Scenario::new("multi", 25).with_swarm(SwarmParams {
                churn: Some(SessionConfig::default()),
                universe: Some(UniverseParams {
                    torrents: 8,
                    popularity_skew: 1.2,
                    membership,
                    split,
                    class_upload_kbps: vec![150.0, 400.0, 950.0],
                    universe_seed: 0xbead,
                }),
                ..SwarmParams::default()
            });
            let json = scenario.to_json();
            assert!(json.contains("\"universe\":{\"torrents\":8"));
            let parsed = Scenario::from_json(&json).expect("universe round trip parses");
            assert_eq!(parsed, scenario);
            // Pretty form too.
            assert_eq!(
                Scenario::from_json(&scenario.to_json_pretty()).unwrap(),
                scenario
            );
        }
    }

    #[test]
    fn legacy_swarm_sections_without_universe_parse_to_none() {
        // Pre-universe preset files carry no `universe` key at all.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams::default());
        let json = scenario.to_json().replace(",\"universe\":null", "");
        assert!(!json.contains("universe"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().universe, None);
    }

    #[test]
    fn legacy_swarm_sections_without_faults_parse_to_none() {
        // Pre-fault preset files carry no `faults` key at all.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams::default());
        let json = scenario.to_json().replace(",\"faults\":null", "");
        assert!(!json.contains("faults"), "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().faults, None);
    }

    #[test]
    fn legacy_swarm_sections_without_churn_parse_to_none() {
        // Pre-churn preset files carry no `churn` key at all.
        let scenario = Scenario::new("legacy", 8).with_swarm(SwarmParams::default());
        let json = scenario.to_json().replace(",\"churn\":null", "");
        // Only the scenario-level ChurnModel axis key remains.
        assert_eq!(json.matches("churn").count(), 1, "not stripped: {json}");
        let parsed = Scenario::from_json(&json).expect("legacy JSON parses");
        assert_eq!(parsed.swarm.unwrap().churn, None);
    }

    #[test]
    fn null_swarm_round_trips_to_none() {
        let scenario = Scenario::new("dyn-only", 5);
        let json = scenario.to_json();
        assert!(json.contains("\"swarm\":null"));
        assert_eq!(Scenario::from_json(&json).unwrap().swarm, None);
    }

    #[test]
    fn to_json_matches_trait_serialization() {
        use serde::Serialize as _;
        let s = Scenario::new("x", 1);
        let mut out = String::new();
        s.serialize_json_into(&mut out);
        assert_eq!(out, s.to_json());
    }
}
