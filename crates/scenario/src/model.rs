//! The pluggable component axes a [`Scenario`](crate::Scenario) composes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_bandwidth::BandwidthCdf;
use strat_bittorrent::PeerBehavior;
use strat_core::prefs::{
    BandedRankPrefs, GlobalPrefs, LatencyPrefs, LexicographicPrefs, PreferenceSystem,
};
use strat_core::{gossip, standard_normal, Capacities, CapacityDistribution, GlobalRanking};
use strat_graph::{generators, Graph, NodeId};

use crate::ScenarioError;

/// The per-peer mark `S(p)` — the quantity peers rank each other by.
///
/// The same model is interpreted in two units, depending on the backend:
/// **collaboration slots** (`b(p)`, rounded to positive integers) for the
/// matching dynamics, and **upload bandwidth** (kbps) for the swarm
/// simulator. Models that only make sense in one unit (the Saroiu CDF is a
/// bandwidth measurement) raise [`ScenarioError::CapacityUnit`] in the
/// other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CapacityModel {
    /// Every peer gets the same mark (constant `b₀`-matching, §4.1).
    Constant {
        /// Slots (must be a non-negative integer) or kbps.
        value: f64,
    },
    /// Rounded normal `N(mean, sigma²)` (§4.2); slot draws round to the
    /// nearest positive integer exactly like
    /// [`CapacityDistribution::RoundedNormal`], bandwidth draws clamp to
    /// ≥ 1 kbps.
    RoundedNormal {
        /// Mean `b̄`.
        mean: f64,
        /// Standard deviation `σ`.
        sigma: f64,
    },
    /// Uniform draws in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// The Figure 10 Saroiu-style upstream CDF, assigned by global rank
    /// (rank 0 = fastest; bandwidth only).
    SaroiuByRank,
    /// The Figure 10 CDF in shuffled order: rank assignment permuted by a
    /// ChaCha8 stream seeded with `shuffle_seed`, so peer indices carry no
    /// rank information (bandwidth only; the swarm's standard setting).
    SaroiuShuffled {
        /// Seed of the shuffling stream.
        shuffle_seed: u64,
    },
    /// Explicit per-peer values.
    Explicit {
        /// One mark per peer.
        values: Vec<f64>,
    },
}

impl CapacityModel {
    /// Samples collaboration-slot capacities for `n` peers.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] for bandwidth-only models, malformed
    /// parameters, or an explicit list of the wrong length.
    pub fn slot_capacities<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Capacities, ScenarioError> {
        match self {
            CapacityModel::Constant { value } => {
                let b0 = checked_slot(*value)?;
                Ok(Capacities::constant(n, b0))
            }
            CapacityModel::RoundedNormal { mean, sigma } => {
                check_normal(*mean, *sigma)?;
                Ok(Capacities::sample(
                    n,
                    &CapacityDistribution::RoundedNormal {
                        mean: *mean,
                        sigma: *sigma,
                    },
                    rng,
                ))
            }
            CapacityModel::Uniform { lo, hi } => {
                check_uniform(*lo, *hi)?;
                Ok(Capacities::from_values(
                    (0..n)
                        .map(|_| (rng.gen_range(*lo..*hi).round().max(1.0)) as u32)
                        .collect(),
                ))
            }
            CapacityModel::SaroiuByRank | CapacityModel::SaroiuShuffled { .. } => {
                Err(ScenarioError::CapacityUnit {
                    model: format!("{self:?}"),
                    wanted: "collaboration slots",
                })
            }
            CapacityModel::Explicit { values } => {
                check_len(n, values.len())?;
                let mut slots = Vec::with_capacity(n);
                for &v in values {
                    slots.push(checked_slot(v)?);
                }
                Ok(Capacities::from_values(slots))
            }
        }
    }

    /// Samples per-peer upload bandwidths (kbps) for `n` peers.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on malformed parameters or an explicit
    /// list of the wrong length.
    pub fn upload_bandwidths<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, ScenarioError> {
        match self {
            CapacityModel::Constant { value } => {
                if !(value.is_finite() && *value > 0.0) {
                    return Err(ScenarioError::InvalidParameter {
                        what: "constant bandwidth",
                        reason: format!("must be positive, got {value}"),
                    });
                }
                Ok(vec![*value; n])
            }
            CapacityModel::RoundedNormal { mean, sigma } => {
                check_normal(*mean, *sigma)?;
                Ok((0..n)
                    .map(|_| (mean + sigma * standard_normal(rng)).max(1.0))
                    .collect())
            }
            CapacityModel::Uniform { lo, hi } => {
                check_uniform(*lo, *hi)?;
                if *lo <= 0.0 {
                    return Err(ScenarioError::InvalidParameter {
                        what: "uniform bandwidth",
                        reason: format!("lower bound must be positive, got {lo}"),
                    });
                }
                Ok((0..n).map(|_| rng.gen_range(*lo..*hi)).collect())
            }
            CapacityModel::SaroiuByRank => {
                Ok(BandwidthCdf::saroiu_gnutella_upstream().assign_by_rank(n))
            }
            CapacityModel::SaroiuShuffled { shuffle_seed } => {
                Ok(BandwidthCdf::saroiu_gnutella_upstream().assign_shuffled(n, *shuffle_seed))
            }
            CapacityModel::Explicit { values } => {
                check_len(n, values.len())?;
                if let Some(bad) = values.iter().find(|v| !(v.is_finite() && **v > 0.0)) {
                    return Err(ScenarioError::InvalidParameter {
                        what: "explicit bandwidth",
                        reason: format!("must be positive, got {bad}"),
                    });
                }
                Ok(values.clone())
            }
        }
    }

    /// The bandwidth CDF behind Saroiu-style models (the Figure 11
    /// efficiency model keys on it); `None` for the others.
    #[must_use]
    pub fn bandwidth_cdf(&self) -> Option<BandwidthCdf> {
        match self {
            CapacityModel::SaroiuByRank | CapacityModel::SaroiuShuffled { .. } => {
                Some(BandwidthCdf::saroiu_gnutella_upstream())
            }
            _ => None,
        }
    }
}

fn checked_slot(value: f64) -> Result<u32, ScenarioError> {
    if value.is_finite() && value >= 0.0 && value.fract() == 0.0 && value <= f64::from(u32::MAX) {
        Ok(value as u32)
    } else {
        Err(ScenarioError::InvalidParameter {
            what: "slot capacity",
            reason: format!("must be a non-negative integer, got {value}"),
        })
    }
}

fn check_normal(mean: f64, sigma: f64) -> Result<(), ScenarioError> {
    if mean.is_finite() && sigma.is_finite() && sigma >= 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::InvalidParameter {
            what: "normal capacity",
            reason: format!("need finite mean and sigma >= 0, got N({mean}, {sigma}^2)"),
        })
    }
}

fn check_span(span: f64) -> Result<(), ScenarioError> {
    if span.is_finite() && span > 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::InvalidParameter {
            what: "latency span",
            reason: format!("must be positive and finite, got {span}"),
        })
    }
}

fn check_uniform(lo: f64, hi: f64) -> Result<(), ScenarioError> {
    if lo.is_finite() && hi.is_finite() && lo < hi {
        Ok(())
    } else {
        Err(ScenarioError::InvalidParameter {
            what: "uniform capacity",
            reason: format!("need lo < hi, got [{lo}, {hi})"),
        })
    }
}

fn check_len(expected: usize, actual: usize) -> Result<(), ScenarioError> {
    if expected == actual {
        Ok(())
    } else {
        Err(ScenarioError::SizeMismatch { expected, actual })
    }
}

/// The acceptance graph (dynamics) / tracker overlay (swarm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologyModel {
    /// Complete knowledge: every pair is acceptable (§4's setting). The
    /// dynamics path uses the `O(n·b·α)` complete-graph specialization and
    /// never materializes the quadratic edge set.
    Complete,
    /// Erdős–Rényi `G(n, d)` by expected degree: each edge independently
    /// with probability `d / (n − 1)` (the paper's simulations).
    ErdosRenyiMeanDegree {
        /// Expected degree `d`.
        d: f64,
    },
    /// Erdős–Rényi `G(n, p)` by edge probability (the analytic chapters'
    /// parameterization).
    ErdosRenyiEdgeProbability {
        /// Edge probability `p`.
        p: f64,
    },
    /// Explicit edge list.
    Explicit {
        /// Undirected edges as `(u, v)` index pairs.
        edges: Vec<(usize, usize)>,
    },
}

impl TopologyModel {
    /// Materializes the graph on `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] for malformed parameters or explicit
    /// edges out of range.
    pub fn build_graph<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Graph, ScenarioError> {
        match self {
            TopologyModel::Complete => Ok(generators::complete(n)),
            TopologyModel::ErdosRenyiMeanDegree { d } => {
                if !(d.is_finite() && *d >= 0.0) {
                    return Err(ScenarioError::InvalidParameter {
                        what: "mean degree",
                        reason: format!("must be non-negative, got {d}"),
                    });
                }
                Ok(generators::erdos_renyi_mean_degree(n, *d, rng))
            }
            TopologyModel::ErdosRenyiEdgeProbability { p } => {
                if !(p.is_finite() && (0.0..=1.0).contains(p)) {
                    return Err(ScenarioError::InvalidParameter {
                        what: "edge probability",
                        reason: format!("must be in [0, 1], got {p}"),
                    });
                }
                Ok(generators::erdos_renyi(n, *p, rng))
            }
            TopologyModel::Explicit { edges } => Ok(Graph::from_edges(
                n,
                edges.iter().map(|&(u, v)| (NodeId::new(u), NodeId::new(v))),
            )?),
        }
    }

    /// Expected mean degree on `n` nodes (analytic kernels key on this).
    #[must_use]
    pub fn mean_degree(&self, n: usize) -> f64 {
        match self {
            TopologyModel::Complete => n.saturating_sub(1) as f64,
            TopologyModel::ErdosRenyiMeanDegree { d } => *d,
            TopologyModel::ErdosRenyiEdgeProbability { p } => p * (n.saturating_sub(1)) as f64,
            TopologyModel::Explicit { edges } => {
                if n == 0 {
                    0.0
                } else {
                    2.0 * edges.len() as f64 / n as f64
                }
            }
        }
    }

    /// Edge probability on `n` nodes (the independence model's `p`).
    #[must_use]
    pub fn edge_probability(&self, n: usize) -> f64 {
        match self {
            TopologyModel::ErdosRenyiEdgeProbability { p } => *p,
            _ if n <= 1 => 0.0,
            other => (other.mean_degree(n) / (n - 1) as f64).clamp(0.0, 1.0),
        }
    }
}

/// How peers order potential mates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PreferenceModel {
    /// The paper's global ranking: peer index = rank (label `i` has rank
    /// `i`; all experiments' convention).
    GlobalRank,
    /// Ranks estimated by gossip sampling (`sample_size` probes per peer,
    /// Jelasity-style peer sampling — §1 reference `[8]`).
    GossipEstimated {
        /// Probes per peer.
        sample_size: usize,
    },
    /// Symmetric latency utility: peers prefer nearby peers; positions are
    /// drawn uniformly from `[0, span)` at build time.
    Latency {
        /// Extent of the (1-D) latency space.
        span: f64,
    },
    /// Lexicographic banded rank refined by latency (§7's combined
    /// utility): rank classes of `class_width`, ties broken by distance.
    BandedRankLatency {
        /// Width of one rank class.
        class_width: usize,
        /// Extent of the latency space.
        span: f64,
    },
}

/// A materialized preference system — what [`PreferenceModel`] builds for
/// the dynamics backends. Rank-shaped models carry a [`GlobalRanking`]
/// (they run on the ranked fast path); the latency-flavoured models carry
/// the core preference systems the generic engine consumes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum BuiltPreferences {
    /// A global-ranking utility (exact or gossip-estimated).
    Global(GlobalPrefs),
    /// The symmetric latency utility.
    Latency(LatencyPrefs),
    /// Banded rank classes refined by latency (§7's combined utility).
    BandedLatency(LexicographicPrefs<BandedRankPrefs, LatencyPrefs>),
}

impl BuiltPreferences {
    /// The global ranking, when this is a rank-shaped system.
    #[must_use]
    pub fn ranking(&self) -> Option<&GlobalRanking> {
        match self {
            BuiltPreferences::Global(prefs) => Some(prefs.ranking()),
            _ => None,
        }
    }
}

impl PreferenceSystem for BuiltPreferences {
    fn n(&self) -> usize {
        match self {
            BuiltPreferences::Global(p) => p.n(),
            BuiltPreferences::Latency(p) => p.n(),
            BuiltPreferences::BandedLatency(p) => p.n(),
        }
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        match self {
            BuiltPreferences::Global(s) => s.prefers(p, a, b),
            BuiltPreferences::Latency(s) => s.prefers(p, a, b),
            BuiltPreferences::BandedLatency(s) => s.prefers(p, a, b),
        }
    }

    fn sort_key(&self, p: NodeId, candidate: NodeId) -> Option<f64> {
        match self {
            BuiltPreferences::Global(s) => s.sort_key(p, candidate),
            BuiltPreferences::Latency(s) => s.sort_key(p, candidate),
            BuiltPreferences::BandedLatency(s) => s.sort_key(p, candidate),
        }
    }
}

impl PreferenceModel {
    /// The global ranking this model induces for the ranked-dynamics path.
    ///
    /// `GlobalRank` and the latency-flavoured models use the identity
    /// ranking (labels are ranks); `GossipEstimated` samples an estimate
    /// from `rng`.
    pub fn build_ranking<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> GlobalRanking {
        match self {
            PreferenceModel::GossipEstimated { sample_size } => {
                gossip::estimate_ranking(&GlobalRanking::identity(n), *sample_size, rng)
            }
            _ => GlobalRanking::identity(n),
        }
    }

    /// Whether this model is a global-ranking utility, i.e. runs on the
    /// ranked instantiation of the engine ([`strat_core::Dynamics`])
    /// rather than the generalized one.
    #[must_use]
    pub fn is_ranked(&self) -> bool {
        matches!(
            self,
            PreferenceModel::GlobalRank | PreferenceModel::GossipEstimated { .. }
        )
    }

    /// Materializes the preference system this model describes, consuming
    /// exactly the randomness of [`build_ranking`](Self::build_ranking)
    /// (rank-shaped models) or
    /// [`latency_positions`](Self::latency_positions) (latency-flavoured
    /// models).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidParameter`] for a non-positive
    /// latency span or a zero class width.
    pub fn build_preferences<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<BuiltPreferences, ScenarioError> {
        match self {
            PreferenceModel::GlobalRank | PreferenceModel::GossipEstimated { .. } => Ok(
                BuiltPreferences::Global(GlobalPrefs::new(self.build_ranking(n, rng))),
            ),
            PreferenceModel::Latency { span } => {
                check_span(*span)?;
                let positions = self
                    .latency_positions(n, rng)
                    .expect("latency model has positions");
                Ok(BuiltPreferences::Latency(LatencyPrefs::new(positions)))
            }
            PreferenceModel::BandedRankLatency { class_width, span } => {
                check_span(*span)?;
                if *class_width == 0 {
                    return Err(ScenarioError::InvalidParameter {
                        what: "rank class width",
                        reason: "must be positive".to_string(),
                    });
                }
                let positions = self
                    .latency_positions(n, rng)
                    .expect("banded model has positions");
                Ok(BuiltPreferences::BandedLatency(LexicographicPrefs::new(
                    BandedRankPrefs::new(GlobalRanking::identity(n), *class_width),
                    LatencyPrefs::new(positions),
                )))
            }
        }
    }

    /// Latency positions for the models that embed peers in a latency
    /// space (`None` otherwise). Drawing consumes `n` uniform draws.
    pub fn latency_positions<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Option<Vec<f64>> {
        match self {
            PreferenceModel::Latency { span } | PreferenceModel::BandedRankLatency { span, .. } => {
                Some((0..n).map(|_| rng.gen_range(0.0..*span)).collect())
            }
            _ => None,
        }
    }

    /// The rank-class width for banded models (`None` otherwise).
    #[must_use]
    pub fn class_width(&self) -> Option<usize> {
        match self {
            PreferenceModel::BandedRankLatency { class_width, .. } => Some(*class_width),
            _ => None,
        }
    }
}

/// Population turnover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChurnModel {
    /// Static population.
    None,
    /// Replacement churn: probability `rate` of one departure+arrival per
    /// initiative step (Figure 3's `x/1000` labels).
    Rate {
        /// Events per initiative step, in `[0, 1]`.
        rate: f64,
    },
    /// Poisson arrivals/departures: an expected `events_per_base_unit`
    /// replacement events per base unit (`n` initiatives), realized by
    /// Bernoulli thinning at rate `events_per_base_unit / n` per step.
    PoissonPerBaseUnit {
        /// Expected churn events per base unit.
        events_per_base_unit: f64,
    },
}

impl ChurnModel {
    /// The per-initiative-step event rate on an `n`-peer system.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the resulting rate leaves `[0, 1]`.
    pub fn rate_per_step(&self, n: usize) -> Result<f64, ScenarioError> {
        let rate = match self {
            ChurnModel::None => 0.0,
            ChurnModel::Rate { rate } => *rate,
            ChurnModel::PoissonPerBaseUnit {
                events_per_base_unit,
            } => {
                if n == 0 {
                    0.0
                } else {
                    events_per_base_unit / n as f64
                }
            }
        };
        if rate.is_finite() && (0.0..=1.0).contains(&rate) {
            Ok(rate)
        } else {
            Err(ScenarioError::InvalidParameter {
                what: "churn rate",
                reason: format!("per-step rate must be in [0, 1], got {rate}"),
            })
        }
    }
}

/// Counts of protocol-deviant leechers in a swarm (everyone else runs the
/// compliant reference policy).
///
/// Assignment is deterministic: altruists take the **lowest** leecher
/// indices, free riders the **highest**, seeds are always compliant. With
/// shuffled capacity models the indices carry no rank information, so the
/// deviant populations are bandwidth-representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorMix {
    /// Leechers that never upload.
    pub free_riders: usize,
    /// Leechers that upload like seeds (no reciprocation demanded).
    pub altruists: usize,
}

impl BehaviorMix {
    /// An all-compliant swarm.
    #[must_use]
    pub fn compliant() -> Self {
        Self {
            free_riders: 0,
            altruists: 0,
        }
    }

    /// Expands the mix into one behavior per peer (`leechers + seeds`).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the deviant counts exceed the
    /// leecher population.
    pub fn assign(
        &self,
        leechers: usize,
        seeds: usize,
    ) -> Result<Vec<PeerBehavior>, ScenarioError> {
        if self.free_riders + self.altruists > leechers {
            return Err(ScenarioError::InvalidParameter {
                what: "behavior mix",
                reason: format!(
                    "{} free riders + {} altruists exceed {leechers} leechers",
                    self.free_riders, self.altruists
                ),
            });
        }
        let mut behaviors = vec![PeerBehavior::Compliant; leechers + seeds];
        for b in behaviors.iter_mut().take(self.altruists) {
            *b = PeerBehavior::Altruistic;
        }
        for b in behaviors
            .iter_mut()
            .take(leechers)
            .skip(leechers - self.free_riders)
        {
            *b = PeerBehavior::FreeRider;
        }
        Ok(behaviors)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn constant_slots_and_bandwidth() {
        let model = CapacityModel::Constant { value: 3.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let caps = model.slot_capacities(5, &mut rng).unwrap();
        assert_eq!(caps.as_slice(), &[3, 3, 3, 3, 3]);
        assert_eq!(model.upload_bandwidths(2, &mut rng).unwrap(), [3.0, 3.0]);
        assert!(CapacityModel::Constant { value: 2.5 }
            .slot_capacities(3, &mut rng)
            .is_err());
    }

    #[test]
    fn rounded_normal_matches_core_sampler() {
        let model = CapacityModel::RoundedNormal {
            mean: 6.0,
            sigma: 0.2,
        };
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let via_model = model.slot_capacities(500, &mut a).unwrap();
        let via_core = Capacities::sample(
            500,
            &CapacityDistribution::RoundedNormal {
                mean: 6.0,
                sigma: 0.2,
            },
            &mut b,
        );
        assert_eq!(via_model, via_core, "RNG consumption must be identical");
    }

    #[test]
    fn saroiu_models_are_bandwidth_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(matches!(
            CapacityModel::SaroiuByRank.slot_capacities(10, &mut rng),
            Err(ScenarioError::CapacityUnit { .. })
        ));
        let by_rank = CapacityModel::SaroiuByRank
            .upload_bandwidths(100, &mut rng)
            .unwrap();
        let shuffled = CapacityModel::SaroiuShuffled { shuffle_seed: 4 }
            .upload_bandwidths(100, &mut rng)
            .unwrap();
        let mut sorted = shuffled.clone();
        sorted.sort_by(|x, y| y.total_cmp(x));
        assert_eq!(by_rank, sorted);
    }

    #[test]
    fn explicit_values_validated() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CapacityModel::Explicit {
            values: vec![3.0, 2.0, 2.0],
        };
        assert_eq!(
            model.slot_capacities(3, &mut rng).unwrap().as_slice(),
            &[3, 2, 2]
        );
        assert!(matches!(
            model.slot_capacities(4, &mut rng),
            Err(ScenarioError::SizeMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn topology_builders_and_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let complete = TopologyModel::Complete.build_graph(6, &mut rng).unwrap();
        assert_eq!(complete.edge_count(), 15);
        assert_eq!(TopologyModel::Complete.mean_degree(6), 5.0);

        let er = TopologyModel::ErdosRenyiMeanDegree { d: 8.0 }
            .build_graph(500, &mut rng)
            .unwrap();
        let mean = 2.0 * er.edge_count() as f64 / 500.0;
        assert!((mean - 8.0).abs() < 1.5, "mean degree {mean}");
        let p_model = TopologyModel::ErdosRenyiEdgeProbability { p: 0.01 };
        assert!((p_model.mean_degree(1001) - 10.0).abs() < 1e-9);
        assert!((p_model.edge_probability(1001) - 0.01).abs() < 1e-12);

        let explicit = TopologyModel::Explicit {
            edges: vec![(0, 1), (1, 2)],
        };
        let g = explicit.build_graph(3, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(explicit.build_graph(2, &mut rng).is_err());
    }

    #[test]
    fn er_mean_degree_matches_generator_stream() {
        // The scenario path must consume the RNG identically to calling
        // the generator directly (bit-identical graphs).
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let via_model = TopologyModel::ErdosRenyiMeanDegree { d: 10.0 }
            .build_graph(300, &mut a)
            .unwrap();
        let direct = generators::erdos_renyi_mean_degree(300, 10.0, &mut b);
        assert_eq!(via_model.edge_count(), direct.edge_count());
        for v in 0..300 {
            assert_eq!(
                via_model.neighbors(NodeId::new(v)),
                direct.neighbors(NodeId::new(v))
            );
        }
    }

    #[test]
    fn churn_rates() {
        assert_eq!(ChurnModel::None.rate_per_step(100).unwrap(), 0.0);
        assert_eq!(
            ChurnModel::Rate { rate: 0.01 }.rate_per_step(100).unwrap(),
            0.01
        );
        assert_eq!(
            ChurnModel::PoissonPerBaseUnit {
                events_per_base_unit: 5.0
            }
            .rate_per_step(1000)
            .unwrap(),
            0.005
        );
        assert!(ChurnModel::Rate { rate: 1.5 }.rate_per_step(10).is_err());
    }

    #[test]
    fn behavior_mix_assignment() {
        let mix = BehaviorMix {
            free_riders: 2,
            altruists: 1,
        };
        let behaviors = mix.assign(6, 2).unwrap();
        assert_eq!(behaviors.len(), 8);
        assert_eq!(behaviors[0], PeerBehavior::Altruistic);
        assert_eq!(behaviors[1], PeerBehavior::Compliant);
        assert_eq!(behaviors[4], PeerBehavior::FreeRider);
        assert_eq!(behaviors[5], PeerBehavior::FreeRider);
        assert_eq!(behaviors[6], PeerBehavior::Compliant); // seed
        assert!(BehaviorMix {
            free_riders: 5,
            altruists: 2
        }
        .assign(6, 0)
        .is_err());
    }

    #[test]
    fn gossip_preferences_estimate_ranks() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let model = PreferenceModel::GossipEstimated { sample_size: 50 };
        let est = model.build_ranking(200, &mut rng);
        let truth = GlobalRanking::identity(200);
        // Estimates are noisy (nonzero mean rank error) but stay local:
        // well under the n/sqrt(k) noise scale.
        let distortion = gossip::ranking_distortion(&truth, &est);
        assert!(
            distortion > 0.0 && distortion < 200.0 / (50.0f64).sqrt(),
            "distortion {distortion}"
        );
        assert!(model.latency_positions(10, &mut rng).is_none());
        let lat = PreferenceModel::Latency { span: 100.0 };
        let pos = lat.latency_positions(10, &mut rng).unwrap();
        assert_eq!(pos.len(), 10);
        assert!(pos.iter().all(|&x| (0.0..100.0).contains(&x)));
    }
}
