//! Declarative simulation scenarios: one serializable [`Scenario`] value is
//! the single way to instantiate *any* simulation in the workspace — the
//! abstract b-matching dynamics (`strat-core`), churned populations, and
//! the protocol-level swarm simulator (`strat-bittorrent`).
//!
//! The paper's central claim is that stratification emerges across
//! settings; this crate makes "a setting" a first-class value composed of
//! five orthogonal axes:
//!
//! * [`CapacityModel`] — the per-peer mark `S(p)`: collaboration slots for
//!   the dynamics, upload bandwidth (kbps) for the swarm. Constant,
//!   uniform, rounded-normal `N(b̄, σ²)` (§4.2), the Saroiu Figure 10 CDF
//!   (by rank or seed-shuffled), or explicit values;
//! * [`TopologyModel`] — the acceptance/overlay graph: complete, Erdős–
//!   Rényi by expected degree `d` or edge probability `p`, or explicit
//!   edges;
//! * [`PreferenceModel`] — how peers order mates: the paper's global rank,
//!   gossip-estimated ranks (§1 ref `[8]`), symmetric latency, or banded
//!   rank × latency (§7);
//! * [`ChurnModel`] — none, replacement churn per initiative step
//!   (Figure 3), or Poisson arrivals/departures per base unit;
//! * [`BehaviorMix`] (swarm only, inside [`SwarmParams`]) — compliant /
//!   free-rider / altruistic peer populations.
//!
//! Scenarios serialize to JSON ([`Scenario::to_json`] /
//! [`Scenario::from_json`]), so a new workload is a JSON file plus shape
//! checks — not a new module. Construction is **deterministic**: every
//! `build_*` method threads an explicit RNG, and the workspace convention
//! ([`stream_rng`]) derives independent ChaCha8 streams from
//! `(seed, stream)` pairs, which keeps results bit-identical for any
//! thread count.
//!
//! # Example
//!
//! Describe a churned 1-matching system, round-trip it through JSON, and
//! verify the rebuilt dynamics are bit-identical:
//!
//! ```
//! use strat_scenario::{stream_rng, CapacityModel, ChurnModel, Scenario, TopologyModel};
//!
//! let scenario = Scenario::new("demo", 200)
//!     .with_seed(7)
//!     .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 10.0 })
//!     .with_capacity(CapacityModel::Constant { value: 1.0 })
//!     .with_churn(ChurnModel::Rate { rate: 0.01 });
//!
//! let parsed = Scenario::from_json(&scenario.to_json())?;
//! assert_eq!(parsed, scenario);
//!
//! let mut a = scenario.build_churn(&mut stream_rng(scenario.seed, 0))?;
//! let mut b = parsed.build_churn(&mut stream_rng(parsed.seed, 0))?;
//! let mut rng_a = stream_rng(scenario.seed, 1);
//! let mut rng_b = stream_rng(parsed.seed, 1);
//! for _ in 0..5 {
//!     a.run_base_unit(&mut rng_a);
//!     b.run_base_unit(&mut rng_b);
//! }
//! assert_eq!(a.dynamics().matching(), b.dynamics().matching());
//! # Ok::<(), strat_scenario::ScenarioError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod error;
mod json;
mod model;
mod scenario;

pub use error::ScenarioError;
pub use model::{
    BehaviorMix, BuiltPreferences, CapacityModel, ChurnModel, PreferenceModel, TopologyModel,
};
pub use scenario::{Scenario, ScenarioDynamics, SwarmParams, UniverseParams};
// The swarm-churn section types come from the engine crate verbatim: the
// scenario's `swarm.churn` section *is* a session configuration, and the
// `swarm.faults` section *is* a fault plan.
pub use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
pub use strat_bittorrent::universe::{CapacitySplit, MembershipModel, Universe, UniverseConfig};
pub use strat_bittorrent::{EventEngine, EventTiming, FaultPlan, FaultWindow};

/// Deterministic ChaCha8 stream `stream` derived from `seed` — the
/// workspace-wide seed-derivation convention (formerly
/// `strat_sim::experiments::common::rng`).
#[must_use]
pub fn stream_rng(seed: u64, stream: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(stream);
    rng
}
