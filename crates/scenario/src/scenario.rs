//! The [`Scenario`] value and its build entry points.

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_bittorrent::session::{ArrivalProcess, Session, SessionConfig};
use strat_bittorrent::universe::{
    derive_seed, CapacitySplit, MembershipModel, Universe, UniverseConfig,
};
use strat_bittorrent::{EventEngine, EventTiming, FaultPlan, Swarm, SwarmConfig};
use strat_core::{
    stable_configuration, stable_configuration_complete, stable_configuration_masked, Capacities,
    ChurnProcess, Dynamics, DynamicsDriver, GeneralDynamics, GlobalRanking, InitiativeOutcome,
    InitiativeStrategy, Matching, RankedAcceptance,
};
use strat_graph::{Graph, NodeId};

use crate::{
    BehaviorMix, BuiltPreferences, CapacityModel, ChurnModel, PreferenceModel, ScenarioError,
    TopologyModel,
};

/// The dynamics backend a scenario's preference axis selects — both arms
/// are instantiations of the same incremental engine
/// (`strat_core::engine::Engine`).
///
/// * [`PreferenceModel::GlobalRank`] and
///   [`PreferenceModel::GossipEstimated`] are global-ranking utilities:
///   they build the **ranked** arm ([`Dynamics`]), whose behaviour (scans,
///   RNG consumption, disorder metrics) is exactly the historical ranked
///   path;
/// * [`PreferenceModel::Latency`] and
///   [`PreferenceModel::BandedRankLatency`] build the **general** arm
///   ([`GeneralDynamics`]) over a per-neighborhood preference-key table —
///   the same threshold + clean/dirty machinery, now driven by the actual
///   latency-flavoured preferences instead of silently degrading to the
///   identity ranking.
///
/// The common driver surface is forwarded; backend-specific extras are
/// reachable through [`as_ranked`](Self::as_ranked) /
/// [`as_general`](Self::as_general).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScenarioDynamics {
    /// Global-ranking fast path.
    Ranked(Dynamics),
    /// Generalized-preference fast path.
    General(GeneralDynamics),
}

impl ScenarioDynamics {
    /// The ranked backend, if this scenario runs on it.
    #[must_use]
    pub fn as_ranked(&self) -> Option<&Dynamics> {
        match self {
            ScenarioDynamics::Ranked(d) => Some(d),
            ScenarioDynamics::General(_) => None,
        }
    }

    /// The generalized backend, if this scenario runs on it.
    #[must_use]
    pub fn as_general(&self) -> Option<&GeneralDynamics> {
        match self {
            ScenarioDynamics::Ranked(_) => None,
            ScenarioDynamics::General(d) => Some(d),
        }
    }

    /// Number of peers (present or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            ScenarioDynamics::Ranked(d) => d.node_count(),
            ScenarioDynamics::General(d) => d.node_count(),
        }
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        match self {
            ScenarioDynamics::Ranked(d) => d.present_count(),
            ScenarioDynamics::General(d) => d.present_count(),
        }
    }

    /// Whether peer `v` is present.
    #[must_use]
    pub fn is_present(&self, v: NodeId) -> bool {
        match self {
            ScenarioDynamics::Ranked(d) => d.is_present(v),
            ScenarioDynamics::General(d) => d.is_present(v),
        }
    }

    /// Current configuration.
    #[must_use]
    pub fn matching(&self) -> &Matching {
        match self {
            ScenarioDynamics::Ranked(d) => d.matching(),
            ScenarioDynamics::General(d) => d.matching(),
        }
    }

    /// Capacities in force.
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        match self {
            ScenarioDynamics::Ranked(d) => d.capacities(),
            ScenarioDynamics::General(d) => d.capacities(),
        }
    }

    /// Total initiatives taken so far.
    #[must_use]
    pub fn initiative_count(&self) -> u64 {
        match self {
            ScenarioDynamics::Ranked(d) => d.initiative_count(),
            ScenarioDynamics::General(d) => d.initiative_count(),
        }
    }

    /// Active (configuration-changing) initiatives taken so far.
    #[must_use]
    pub fn active_initiative_count(&self) -> u64 {
        match self {
            ScenarioDynamics::Ranked(d) => d.active_initiative_count(),
            ScenarioDynamics::General(d) => d.active_initiative_count(),
        }
    }

    /// Removes a peer (drops its collaborations). No-op if absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        match self {
            ScenarioDynamics::Ranked(d) => d.remove_peer(v),
            ScenarioDynamics::General(d) => d.remove_peer(v),
        }
    }

    /// Re-inserts an absent peer with no mates. No-op if present.
    pub fn insert_peer(&mut self, v: NodeId) {
        match self {
            ScenarioDynamics::Ranked(d) => d.insert_peer(v),
            ScenarioDynamics::General(d) => d.insert_peer(v),
        }
    }

    /// Performs one initiative by a uniformly random present peer.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        match self {
            ScenarioDynamics::Ranked(d) => d.step(rng),
            ScenarioDynamics::General(d) => d.step(rng),
        }
    }

    /// Runs `n` initiatives (one base unit). Returns the active count.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        match self {
            ScenarioDynamics::Ranked(d) => d.run_base_unit(rng),
            ScenarioDynamics::General(d) => d.run_base_unit(rng),
        }
    }

    /// Has peer `p` take one initiative with the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        match self {
            ScenarioDynamics::Ranked(d) => d.initiative(p, rng),
            ScenarioDynamics::General(d) => d.initiative(p, rng),
        }
    }

    /// Whether the current configuration is stable for the present peers.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        match self {
            ScenarioDynamics::Ranked(d) => d.is_stable(),
            ScenarioDynamics::General(d) => d.is_stable(),
        }
    }

    /// Disorder of the current configuration: distance to the (memoized)
    /// instant stable configuration of the present peers — the paper's §3
    /// metric on the ranked arm, the key-space analogue on the general arm.
    ///
    /// # Panics
    ///
    /// Panics on a general-arm instance admitting no stable configuration
    /// (impossible for the cycle-free preference models scenarios expose).
    #[must_use]
    pub fn disorder(&self) -> f64 {
        match self {
            ScenarioDynamics::Ranked(d) => d.disorder(),
            ScenarioDynamics::General(d) => d.disorder(),
        }
    }

    /// Disorder under the generalized b-matching metric (the ranked arm's
    /// rank-label metric / the general arm's key-space metric) — use this
    /// instead of [`disorder`](Self::disorder) when capacities exceed 1.
    ///
    /// # Panics
    ///
    /// See [`disorder`](Self::disorder).
    #[must_use]
    pub fn disorder_general(&self) -> f64 {
        match self {
            ScenarioDynamics::Ranked(d) => d.disorder_general(),
            ScenarioDynamics::General(d) => d.disorder(),
        }
    }

    /// The instant stable configuration over present peers (memoized).
    ///
    /// # Panics
    ///
    /// See [`disorder`](Self::disorder).
    #[must_use]
    pub fn instant_stable(&self) -> Matching {
        match self {
            ScenarioDynamics::Ranked(d) => d.instant_stable(),
            ScenarioDynamics::General(d) => d.instant_stable(),
        }
    }
}

impl DynamicsDriver for ScenarioDynamics {
    fn node_count(&self) -> usize {
        ScenarioDynamics::node_count(self)
    }

    fn present_count(&self) -> usize {
        ScenarioDynamics::present_count(self)
    }

    fn is_present(&self, v: NodeId) -> bool {
        ScenarioDynamics::is_present(self, v)
    }

    fn remove_peer(&mut self, v: NodeId) {
        ScenarioDynamics::remove_peer(self, v);
    }

    fn insert_peer(&mut self, v: NodeId) {
        ScenarioDynamics::insert_peer(self, v);
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        ScenarioDynamics::step(self, rng)
    }
}

/// Swarm-backend parameters (the protocol knobs the abstract dynamics do
/// not have). `peers` on the [`Scenario`] is the **leecher** count; seeds
/// are extra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmParams {
    /// Number of seeds appended after the leechers.
    pub seeds: usize,
    /// Upload capacity handed to every seed (kbps).
    pub seed_upload_kbps: f64,
    /// Tit-for-Tat unchoke slots (the paper's `b₀`).
    pub tft_slots: usize,
    /// Optimistic unchoke slots.
    pub optimistic_slots: usize,
    /// Rounds between optimistic rotations.
    pub optimistic_period: u32,
    /// Pieces in the shared file.
    pub piece_count: usize,
    /// Size of one piece in kilobits.
    pub piece_size_kbit: f64,
    /// Seconds per round.
    pub round_seconds: f64,
    /// Initial completion fraction of each leecher.
    pub initial_completion: f64,
    /// Whether completed leechers keep seeding.
    pub seed_after_completion: bool,
    /// Fluid-content mode (§6 steady state; no piece bookkeeping).
    pub fluid_content: bool,
    /// Seed of the swarm's internal RNG (overlay, rotations, piece init).
    pub swarm_seed: u64,
    /// Protocol-behavior mix of the leecher population.
    pub behavior: BehaviorMix,
    /// Open-membership section: arrival/departure processes driving a
    /// [`Session`] ([`Scenario::build_session`]); `None` for closed
    /// swarms.
    pub churn: Option<SessionConfig>,
    /// Fault-plane section: crash/loss/outage/partition injection applied
    /// by [`Scenario::build_session`]; `None` (or an inert plan) leaves
    /// the session bit-identical to the fault-free build.
    pub faults: Option<FaultPlan>,
    /// Timing axis: `None` selects the synchronous round engine;
    /// `Some` selects the continuous-time event engine
    /// ([`Scenario::build_event_engine`]) with per-class speed
    /// multipliers and rechoke/announce intervals.
    pub timing: Option<EventTiming>,
    /// Multi-swarm axis: `None` is a single-torrent scenario; `Some`
    /// makes [`Scenario::build_universe`] run `torrents` sessions over a
    /// shared peer population with cross-swarm membership and capacity
    /// splitting.
    pub universe: Option<UniverseParams>,
}

/// The `swarm.universe` section: a shared peer population across
/// `torrents` swarms ([`Scenario::build_universe`]).
///
/// Torrent `t` derives its seeds from the scenario's single-swarm seeds
/// via [`derive_seed`]`(base, t)` (torrent 0 keeps them exactly), and its
/// Poisson arrival rate from the base rate via the popularity weights:
/// torrent `t` has weight `(t + 1)^(-popularity_skew)` (a Zipf ramp; skew
/// 0 is uniform) and rate `base_rate · torrents · ŵ_t` with `ŵ` the
/// normalized weights — the *total* universe arrival rate is the base
/// rate scaled by the torrent count, shared out by popularity. A
/// 1-torrent universe therefore builds the exact session of
/// [`Scenario::build_session`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniverseParams {
    /// Number of torrents (swarms) sharing the population.
    pub torrents: usize,
    /// Zipf exponent of the per-torrent popularity weights (0 = uniform).
    pub popularity_skew: f64,
    /// Per-member multi-torrent membership process.
    pub membership: MembershipModel,
    /// Capacity-split policy across a member's active replicas.
    pub split: CapacitySplit,
    /// Capacity classes assigned to members round-robin in claim order
    /// (empty keeps session-given capacities).
    pub class_upload_kbps: Vec<f64>,
    /// Seed of the universe's own ChaCha streams.
    pub universe_seed: u64,
}

impl Default for UniverseParams {
    /// Two uniformly popular torrents, one extra membership per member,
    /// equal capacity split, no capacity classes, seed `0x0a11`.
    fn default() -> Self {
        Self {
            torrents: 2,
            popularity_skew: 0.0,
            membership: MembershipModel::Fixed { extra: 1 },
            split: CapacitySplit::EqualShare,
            class_upload_kbps: Vec::new(),
            universe_seed: 0x0a11,
        }
    }
}

impl UniverseParams {
    /// The unnormalized popularity weights `(t + 1)^(-skew)`.
    #[must_use]
    pub fn popularity_weights(&self) -> Vec<f64> {
        (0..self.torrents)
            .map(|t| ((t + 1) as f64).powf(-self.popularity_skew))
            .collect()
    }
}

impl Default for SwarmParams {
    /// Paper-aligned defaults mirroring [`SwarmConfig::builder`]: 3 TFT +
    /// 1 optimistic slot, 10 s rounds, rotation every 3 rounds, 256 pieces
    /// of 2048 kbit, 40 % initial completion, all-compliant.
    fn default() -> Self {
        Self {
            seeds: 1,
            seed_upload_kbps: 1000.0,
            tft_slots: 3,
            optimistic_slots: 1,
            optimistic_period: 3,
            piece_count: 256,
            piece_size_kbit: 2048.0,
            round_seconds: 10.0,
            initial_completion: 0.4,
            seed_after_completion: true,
            fluid_content: false,
            swarm_seed: 0xb17,
            behavior: BehaviorMix::compliant(),
            churn: None,
            faults: None,
            timing: None,
            universe: None,
        }
    }
}

/// A complete, serializable description of a simulation setting.
///
/// See the [crate docs](crate) for the component axes and a worked
/// example. Build entry points:
///
/// * [`build_dynamics`](Self::build_dynamics) — the §3 initiative process;
/// * [`build_churn`](Self::build_churn) — dynamics wrapped in the churn
///   model;
/// * [`build_swarm`](Self::build_swarm) — the §6 protocol simulator;
/// * [`stable_matching`](Self::stable_matching) — the stable configuration
///   directly (Algorithm 1, with the complete-graph specialization);
/// * [`build_graph`](Self::build_graph) /
///   [`build_acceptance`](Self::build_acceptance) /
///   [`build_capacities`](Self::build_capacities) — the individual pieces,
///   for kernels that recombine them.
///
/// All entry points consume the caller's RNG in a fixed documented order
/// (topology → preference → capacities), so a scenario plus an RNG stream
/// is a reproducible instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Preset name (`fig3`, `bt1-freeriders`, …).
    pub name: String,
    /// Registry id of the experiment kernel that measures this scenario
    /// (`experiments --scenario` dispatches on it).
    pub experiment: String,
    /// Base seed; experiment kernels derive their ChaCha8 streams from it
    /// via [`stream_rng`](crate::stream_rng).
    pub seed: u64,
    /// Number of peers (for swarm scenarios: number of **leechers**).
    pub peers: usize,
    /// The mark model `S(p)` (slots / upload bandwidth).
    pub capacity: CapacityModel,
    /// Acceptance graph / overlay.
    pub topology: TopologyModel,
    /// Mate-ordering model.
    pub preference: PreferenceModel,
    /// Population turnover.
    pub churn: ChurnModel,
    /// Initiative scan strategy for the dynamics backend.
    pub strategy: InitiativeStrategy,
    /// Swarm-backend section; `None` for pure-dynamics scenarios.
    pub swarm: Option<SwarmParams>,
}

impl Scenario {
    /// A minimal scenario: `peers` peers, complete topology, global rank,
    /// constant 1-matching, best-mate initiatives, no churn, no swarm
    /// section, seed 2007. `experiment` starts equal to `name`.
    #[must_use]
    pub fn new(name: impl Into<String>, peers: usize) -> Self {
        let name = name.into();
        Self {
            experiment: name.clone(),
            name,
            seed: 2007,
            peers,
            capacity: CapacityModel::Constant { value: 1.0 },
            topology: TopologyModel::Complete,
            preference: PreferenceModel::GlobalRank,
            churn: ChurnModel::None,
            strategy: InitiativeStrategy::BestMate,
            swarm: None,
        }
    }

    /// Replaces the peer count.
    #[must_use]
    pub fn with_peers(mut self, peers: usize) -> Self {
        self.peers = peers;
        self
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the preset name (keeps the experiment binding).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the experiment binding.
    #[must_use]
    pub fn with_experiment(mut self, experiment: impl Into<String>) -> Self {
        self.experiment = experiment.into();
        self
    }

    /// Replaces the capacity model.
    #[must_use]
    pub fn with_capacity(mut self, capacity: CapacityModel) -> Self {
        self.capacity = capacity;
        self
    }

    /// Replaces the topology model.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologyModel) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the preference model.
    #[must_use]
    pub fn with_preference(mut self, preference: PreferenceModel) -> Self {
        self.preference = preference;
        self
    }

    /// Replaces the churn model.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Replaces the initiative strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: InitiativeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Attaches (or replaces) the swarm section.
    #[must_use]
    pub fn with_swarm(mut self, swarm: SwarmParams) -> Self {
        self.swarm = Some(swarm);
        self
    }

    /// Materializes the topology on this scenario's peer count.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyModel::build_graph`] failures.
    pub fn build_graph<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph, ScenarioError> {
        self.topology.build_graph(self.peers, rng)
    }

    /// The global ranking the preference model induces (identity, or a
    /// gossip estimate drawn from `rng`).
    pub fn build_ranking<R: Rng + ?Sized>(&self, rng: &mut R) -> GlobalRanking {
        self.preference.build_ranking(self.peers, rng)
    }

    /// Slot capacities for the dynamics backend.
    ///
    /// # Errors
    ///
    /// Propagates [`CapacityModel::slot_capacities`] failures.
    pub fn build_capacities<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<Capacities, ScenarioError> {
        self.capacity.slot_capacities(self.peers, rng)
    }

    /// The ranked acceptance structure (topology + preference). Consumes
    /// the RNG in the order topology → preference.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn build_acceptance<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<RankedAcceptance, ScenarioError> {
        let graph = self.build_graph(rng)?;
        let ranking = self.build_ranking(rng);
        Ok(RankedAcceptance::new(graph, ranking)?)
    }

    /// The preference system this scenario's preference axis describes
    /// (consumes the RNG like [`build_ranking`](Self::build_ranking) for
    /// rank-shaped models, or the latency-position draws otherwise).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn build_preferences<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<BuiltPreferences, ScenarioError> {
        self.preference.build_preferences(self.peers, rng)
    }

    /// The initiative-process driver from the empty configuration,
    /// consuming the RNG in the order topology → preference → capacities.
    ///
    /// The preference axis selects the backend (see [`ScenarioDynamics`]):
    /// global-ranking models build the ranked arm exactly as before;
    /// latency-flavoured models now drive the generic engine instead of
    /// degrading to an identity ranking.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn build_dynamics<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<ScenarioDynamics, ScenarioError> {
        if self.preference.is_ranked() {
            let acc = self.build_acceptance(rng)?;
            let caps = self.build_capacities(rng)?;
            Ok(ScenarioDynamics::Ranked(Dynamics::new(
                acc,
                caps,
                self.strategy,
            )?))
        } else {
            let graph = self.build_graph(rng)?;
            let prefs = self.build_preferences(rng)?;
            let caps = self.build_capacities(rng)?;
            Ok(ScenarioDynamics::General(GeneralDynamics::new(
                &graph,
                &prefs,
                caps,
                self.strategy,
            )?))
        }
    }

    /// The initiative-process driver started **at** the stable
    /// configuration (Figure 2's perturbation experiments begin here
    /// rather than at `C∅`). Same RNG consumption as
    /// [`build_dynamics`](Self::build_dynamics).
    ///
    /// The ranked arm jumps there by Algorithm 1; the general arm settles
    /// with deterministic best-mate sweeps (its canonical stable
    /// configuration).
    ///
    /// # Errors
    ///
    /// Propagates component failures; general-arm preference systems with
    /// odd preference cycles surface as
    /// [`strat_core::ModelError::NoStableConfiguration`] (none of the
    /// scenario preference models can produce one).
    pub fn build_dynamics_at_stable<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<ScenarioDynamics, ScenarioError> {
        if self.preference.is_ranked() {
            let acc = self.build_acceptance(rng)?;
            let caps = self.build_capacities(rng)?;
            let stable = stable_configuration(&acc, &caps)?;
            Ok(ScenarioDynamics::Ranked(Dynamics::with_configuration(
                acc,
                caps,
                self.strategy,
                stable,
            )?))
        } else {
            let mut built = self.build_dynamics(rng)?;
            let ScenarioDynamics::General(ref mut dynamics) = built else {
                unreachable!("non-ranked preference models build the general arm")
            };
            dynamics.settle().map_err(ScenarioError::Model)?;
            // Counter parity with the ranked arm, which jumps to stability
            // via Algorithm 1: a freshly built at-stable driver reports no
            // pre-existing initiative activity.
            dynamics.reset_initiative_counters();
            Ok(built)
        }
    }

    /// The dynamics wrapped in this scenario's churn model.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn build_churn<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<ChurnProcess<ScenarioDynamics>, ScenarioError> {
        let rate = self.churn.rate_per_step(self.peers)?;
        Ok(ChurnProcess::new(self.build_dynamics(rng)?, rate))
    }

    /// The stable configuration of this scenario (Algorithm 1).
    ///
    /// Complete topologies dispatch to the `O(n·b·α)` specialization and
    /// never materialize the quadratic edge set — the Table 1 / Figure 6
    /// instances at `n = 10⁵` stay sub-second.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn stable_matching<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Matching, ScenarioError> {
        if matches!(self.topology, TopologyModel::Complete) {
            let ranking = self.build_ranking(rng);
            let caps = self.build_capacities(rng)?;
            Ok(stable_configuration_complete(&ranking, &caps)?)
        } else {
            let acc = self.build_acceptance(rng)?;
            let caps = self.build_capacities(rng)?;
            Ok(stable_configuration(&acc, &caps)?)
        }
    }

    /// The stable configuration restricted to peers where `present`
    /// holds (non-complete topologies; the churn experiments' metric).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn stable_matching_masked<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        present: impl Fn(strat_graph::NodeId) -> bool,
    ) -> Result<Matching, ScenarioError> {
        let acc = self.build_acceptance(rng)?;
        let caps = self.build_capacities(rng)?;
        Ok(stable_configuration_masked(&acc, &caps, present)?)
    }

    /// The protocol-level swarm: `peers` leechers plus the swarm section's
    /// seeds, upload bandwidths from the capacity model (RNG-consuming
    /// models draw from `rng`), overlay degree from the topology model,
    /// behaviors from the mix.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingSwarm`] without a swarm section;
    /// otherwise propagates component failures.
    pub fn build_swarm<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Swarm, ScenarioError> {
        let params = self.swarm.as_ref().ok_or(ScenarioError::MissingSwarm)?;
        if !(params.seed_upload_kbps.is_finite() && params.seed_upload_kbps > 0.0) {
            return Err(ScenarioError::InvalidParameter {
                what: "seed upload",
                reason: format!("must be positive kbps, got {}", params.seed_upload_kbps),
            });
        }
        let mut uploads = self.capacity.upload_bandwidths(self.peers, rng)?;
        uploads.extend(std::iter::repeat_n(params.seed_upload_kbps, params.seeds));
        let behaviors = params.behavior.assign(self.peers, params.seeds)?;
        let total = self.peers + params.seeds;
        let config: SwarmConfig = SwarmConfig::builder()
            .leechers(self.peers)
            .seeds(params.seeds)
            .piece_count(params.piece_count)
            .piece_size_kbit(params.piece_size_kbit)
            .tft_slots(params.tft_slots)
            .optimistic_slots(params.optimistic_slots)
            .optimistic_period(params.optimistic_period)
            .mean_neighbors(self.topology.mean_degree(total))
            .initial_completion(params.initial_completion)
            .seed_after_completion(params.seed_after_completion)
            .fluid_content(params.fluid_content)
            .seed(params.swarm_seed)
            .build();
        Ok(Swarm::with_behaviors(config, &uploads, &behaviors))
    }

    /// The open-membership session: the swarm of
    /// [`build_swarm`](Self::build_swarm) (identical RNG consumption)
    /// wrapped in the `swarm.churn` section's arrival/departure processes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingSwarm`] /
    /// [`ScenarioError::MissingChurn`] without the respective sections,
    /// [`ScenarioError::InvalidParameter`] for a fluid-content swarm (open
    /// membership needs completions), an out-of-range probability or
    /// arrival rate, a non-positive arrival capacity or a zero target
    /// degree; otherwise propagates component failures.
    pub fn build_session<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Session, ScenarioError> {
        let params = self.swarm.as_ref().ok_or(ScenarioError::MissingSwarm)?;
        let churn = params.churn.as_ref().ok_or(ScenarioError::MissingChurn)?;
        if params.fluid_content {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm churn",
                reason: "open membership requires piece mode (fluid content never completes)"
                    .to_string(),
            });
        }
        // The engine's own constraint set ([`SessionConfig::validate`], the
        // single source of truth `Session::new` asserts), surfaced as a
        // [`ScenarioError`] so malformed JSON fails cleanly instead of
        // panicking.
        churn
            .validate()
            .map_err(|reason| ScenarioError::InvalidParameter {
                what: "swarm churn",
                reason,
            })?;
        // Same pattern for the fault plan: surface
        // [`FaultPlan::validate`]'s constraint set as an error instead of
        // letting [`Session::with_faults`] panic on malformed JSON. An
        // absent section is the inert plan (bit-identical build).
        let faults = params.faults.clone().unwrap_or_else(FaultPlan::none);
        faults
            .validate()
            .map_err(|reason| ScenarioError::InvalidParameter {
                what: "swarm faults",
                reason,
            })?;
        let swarm = self.build_swarm(rng)?;
        Ok(Session::with_faults(swarm, churn.clone(), faults))
    }

    /// The continuous-time event engine: the swarm of
    /// [`build_swarm`](Self::build_swarm) (identical RNG consumption)
    /// driven by the `swarm.timing` section's discrete-event clock, with
    /// the `swarm.churn` section (if present) supplying arrival/departure
    /// processes on the event timeline.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingSwarm`] /
    /// [`ScenarioError::MissingTiming`] without the respective sections,
    /// [`ScenarioError::InvalidParameter`] for a fluid-content swarm, a
    /// malformed timing or churn sub-section, or a swarm section that
    /// combines `timing` with a fault plan (the fault plane is a
    /// round-engine construct; the event engine does not consume it);
    /// otherwise propagates component failures.
    pub fn build_event_engine<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<EventEngine, ScenarioError> {
        let params = self.swarm.as_ref().ok_or(ScenarioError::MissingSwarm)?;
        let timing = params.timing.clone().ok_or(ScenarioError::MissingTiming)?;
        if params.fluid_content {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm timing",
                reason: "event engine requires piece mode (fluid content never completes)"
                    .to_string(),
            });
        }
        if params.faults.is_some() {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm timing",
                reason: "fault plans are a round-engine construct; \
                         remove `swarm.faults` or `swarm.timing`"
                    .to_string(),
            });
        }
        timing
            .validate()
            .map_err(|reason| ScenarioError::InvalidParameter {
                what: "swarm timing",
                reason,
            })?;
        if let Some(churn) = &params.churn {
            churn
                .validate()
                .map_err(|reason| ScenarioError::InvalidParameter {
                    what: "swarm churn",
                    reason,
                })?;
        }
        let swarm = self.build_swarm(rng)?;
        Ok(EventEngine::new(swarm, timing, params.churn.clone()))
    }

    /// The multi-swarm universe: `torrents` sessions — each the
    /// single-swarm build with per-torrent [`derive_seed`]-derived swarm
    /// and session seeds and popularity-scaled Poisson arrival rates —
    /// sharing one peer population through the `swarm.universe` section's
    /// membership and capacity-split policies.
    ///
    /// RNG consumption is one [`build_swarm`](Self::build_swarm)
    /// equivalent per torrent, in torrent order; torrent 0 keeps the
    /// scenario's single-swarm seeds exactly, so a 1-torrent universe
    /// consumes the stream exactly like
    /// [`build_session`](Self::build_session) and embeds a bit-identical
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingSwarm`] /
    /// [`ScenarioError::MissingUniverse`] / [`ScenarioError::MissingChurn`]
    /// without the respective sections, and
    /// [`ScenarioError::InvalidParameter`] for a fluid-content swarm, a
    /// malformed churn or universe sub-section, a compacting churn
    /// section (compaction invalidates the universe's cross-swarm peer
    /// handles), or a swarm section combining `universe` with `faults` or
    /// `timing` (both are single-session constructs); otherwise
    /// propagates component failures.
    pub fn build_universe<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Universe, ScenarioError> {
        let params = self.swarm.as_ref().ok_or(ScenarioError::MissingSwarm)?;
        let universe = params
            .universe
            .as_ref()
            .ok_or(ScenarioError::MissingUniverse)?;
        let churn = params.churn.as_ref().ok_or(ScenarioError::MissingChurn)?;
        if params.fluid_content {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason: "shared membership requires piece mode (fluid content never completes)"
                    .to_string(),
            });
        }
        if params.faults.is_some() {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason: "fault plans are a single-session construct; \
                         remove `swarm.faults` or `swarm.universe`"
                    .to_string(),
            });
        }
        if params.timing.is_some() {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason: "the event clock is a single-session construct; \
                         remove `swarm.timing` or `swarm.universe`"
                    .to_string(),
            });
        }
        if churn.compact_threshold.is_some() {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason: "universe sessions must not compact \
                         (compaction invalidates cross-swarm peer handles)"
                    .to_string(),
            });
        }
        churn
            .validate()
            .map_err(|reason| ScenarioError::InvalidParameter {
                what: "swarm churn",
                reason,
            })?;
        if !(universe.popularity_skew.is_finite() && universe.popularity_skew >= 0.0) {
            return Err(ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason: format!(
                    "popularity skew must be a finite non-negative exponent, got {}",
                    universe.popularity_skew
                ),
            });
        }
        let weights = universe.popularity_weights();
        let config = UniverseConfig {
            membership: universe.membership,
            split: universe.split,
            class_upload_kbps: universe.class_upload_kbps.clone(),
            popularity: weights.clone(),
            universe_seed: universe.universe_seed,
        };
        config
            .validate(universe.torrents)
            .map_err(|reason| ScenarioError::InvalidParameter {
                what: "swarm universe",
                reason,
            })?;
        let total_weight: f64 = weights.iter().sum();
        let mut sessions = Vec::with_capacity(universe.torrents);
        for (t, weight) in weights.iter().enumerate() {
            let mut per_torrent = self.clone();
            let mut swarm_params = params.clone();
            swarm_params.swarm_seed = derive_seed(params.swarm_seed, t as u64);
            per_torrent.swarm = Some(swarm_params);
            let swarm = per_torrent.build_swarm(rng)?;
            let mut session_config = churn.clone();
            session_config.session_seed = derive_seed(churn.session_seed, t as u64);
            if let ArrivalProcess::Poisson { rate } = session_config.arrival {
                session_config.arrival = ArrivalProcess::Poisson {
                    rate: rate * universe.torrents as f64 * weight / total_weight,
                };
            }
            sessions.push(Session::new(swarm, session_config));
        }
        Ok(Universe::new(sessions, config))
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_bittorrent::PeerBehavior;

    use crate::stream_rng;

    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn default_scenario_builds_everything() {
        let scenario = Scenario::new("t", 30);
        let mut r = rng(1);
        let dynamics = scenario.build_dynamics(&mut r).unwrap();
        assert_eq!(dynamics.node_count(), 30);
        let stable = scenario.stable_matching(&mut rng(1)).unwrap();
        // Complete 1-matching: consecutive pairs.
        assert_eq!(stable.edge_count(), 15);
    }

    #[test]
    fn build_order_is_topology_preference_capacity() {
        // A scenario whose every axis consumes RNG: the composite build
        // must equal the hand-sequenced one on a shared stream.
        let scenario = Scenario::new("t", 120)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_preference(PreferenceModel::GossipEstimated { sample_size: 20 })
            .with_capacity(CapacityModel::RoundedNormal {
                mean: 2.0,
                sigma: 0.5,
            });
        let mut a = rng(5);
        let built = scenario.build_dynamics(&mut a).unwrap();
        let mut b = rng(5);
        let graph = scenario.topology.build_graph(120, &mut b).unwrap();
        let ranking = scenario.preference.build_ranking(120, &mut b);
        let caps = scenario.capacity.slot_capacities(120, &mut b).unwrap();
        let by_hand = Dynamics::new(
            RankedAcceptance::new(graph, ranking).unwrap(),
            caps,
            scenario.strategy,
        )
        .unwrap();
        let built = built.as_ranked().expect("gossip runs the ranked arm");
        assert_eq!(built.acceptance(), by_hand.acceptance());
        assert_eq!(built.capacities(), by_hand.capacities());
    }

    #[test]
    fn churn_scenario_rate_reaches_process() {
        let scenario = Scenario::new("t", 50)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 6.0 })
            .with_churn(ChurnModel::PoissonPerBaseUnit {
                events_per_base_unit: 5.0,
            });
        let churn = scenario.build_churn(&mut rng(2)).unwrap();
        assert!((churn.rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn swarm_scenario_builds_with_behaviors() {
        let scenario = Scenario::new("t", 20)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 10.0 })
            .with_capacity(CapacityModel::SaroiuShuffled { shuffle_seed: 3 })
            .with_swarm(SwarmParams {
                seeds: 2,
                fluid_content: true,
                behavior: BehaviorMix {
                    free_riders: 3,
                    altruists: 1,
                },
                ..SwarmParams::default()
            });
        let swarm = scenario.build_swarm(&mut rng(4)).unwrap();
        assert_eq!(swarm.peer_count(), 22);
        assert_eq!(swarm.peer(0).behavior(), PeerBehavior::Altruistic);
        assert_eq!(swarm.peer(19).behavior(), PeerBehavior::FreeRider);
        assert!(swarm.peer(20).is_original_seed());
        assert_eq!(swarm.peer(20).upload_kbps(), 1000.0);
    }

    #[test]
    fn session_scenario_builds_and_runs() {
        let scenario = Scenario::new("t", 24)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 400.0 })
            .with_swarm(SwarmParams {
                seeds: 2,
                piece_count: 32,
                piece_size_kbit: 150.0,
                churn: Some(SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 2.0 },
                    arrival_upload_kbps: 400.0,
                    target_degree: 8,
                    ..SessionConfig::default()
                }),
                ..SwarmParams::default()
            });
        let mut session = scenario.build_session(&mut rng(3)).unwrap();
        session.run_rounds(8);
        assert!(session.stats().arrivals > 0);
        session.swarm().validate_consistency();
        // Same stream, same session — and the embedded swarm matches the
        // closed build (identical RNG consumption).
        let swarm = scenario.build_swarm(&mut rng(3)).unwrap();
        assert_eq!(
            session.swarm().config().mean_neighbors,
            swarm.config().mean_neighbors
        );
    }

    #[test]
    fn session_requires_churn_and_piece_mode() {
        let base = Scenario::new("t", 10)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 6.0 })
            .with_capacity(CapacityModel::Constant { value: 300.0 });
        // No swarm section at all.
        assert!(matches!(
            base.clone().build_session(&mut rng(1)),
            Err(ScenarioError::MissingSwarm)
        ));
        // Swarm section without churn.
        let closed = base.clone().with_swarm(SwarmParams::default());
        assert!(matches!(
            closed.build_session(&mut rng(1)),
            Err(ScenarioError::MissingChurn)
        ));
        // Fluid-content sessions are rejected.
        let fluid = base.clone().with_swarm(SwarmParams {
            fluid_content: true,
            churn: Some(SessionConfig::default()),
            ..SwarmParams::default()
        });
        assert!(matches!(
            fluid.build_session(&mut rng(1)),
            Err(ScenarioError::InvalidParameter { .. })
        ));
        // Out-of-range probabilities surface as errors, not panics.
        let bad = base.with_swarm(SwarmParams {
            churn: Some(SessionConfig {
                departure: crate::DepartureRules {
                    seed_leave_prob: 1.5,
                    ..crate::DepartureRules::none()
                },
                ..SessionConfig::default()
            }),
            ..SwarmParams::default()
        });
        assert!(matches!(
            bad.build_session(&mut rng(1)),
            Err(ScenarioError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn faulted_session_builds_and_zero_fault_is_identical() {
        let base = Scenario::new("t", 20)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 400.0 })
            .with_swarm(SwarmParams {
                seeds: 2,
                piece_count: 32,
                piece_size_kbit: 150.0,
                churn: Some(SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 1.0 },
                    arrival_upload_kbps: 400.0,
                    target_degree: 8,
                    ..SessionConfig::default()
                }),
                ..SwarmParams::default()
            });
        // An inert-but-present plan leaves the build bit-identical to the
        // section-free one.
        let mut swarm_params = base.swarm.clone().unwrap();
        swarm_params.faults = Some(FaultPlan::none());
        let inert = base.clone().with_swarm(swarm_params);
        let mut a = base.build_session(&mut rng(2)).unwrap();
        let mut b = inert.build_session(&mut rng(2)).unwrap();
        a.run_rounds(10);
        b.run_rounds(10);
        assert_eq!(a.stats(), b.stats());
        // A live plan actually injects faults.
        let mut swarm_params = base.swarm.clone().unwrap();
        swarm_params.faults = Some(FaultPlan {
            crash_prob: 0.05,
            fault_seed: 3,
            ..FaultPlan::none()
        });
        let faulty = base.clone().with_swarm(swarm_params);
        let mut c = faulty.build_session(&mut rng(2)).unwrap();
        c.run_rounds(10);
        assert!(c.stats().crashes > 0);
        // Invalid plans surface as errors, not panics.
        let mut swarm_params = base.swarm.clone().unwrap();
        swarm_params.faults = Some(FaultPlan {
            crash_prob: 1.5,
            ..FaultPlan::none()
        });
        assert!(matches!(
            base.with_swarm(swarm_params).build_session(&mut rng(2)),
            Err(ScenarioError::InvalidParameter {
                what: "swarm faults",
                ..
            })
        ));
    }

    #[test]
    fn event_engine_builds_and_matches_round_engine_in_sync_limit() {
        let scenario = Scenario::new("t", 24)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 300.0 })
            .with_swarm(SwarmParams {
                seeds: 2,
                piece_count: 32,
                piece_size_kbit: 150.0,
                timing: Some(EventTiming::synchronous_limit(10.0)),
                ..SwarmParams::default()
            });
        let mut engine = scenario.build_event_engine(&mut rng(4)).unwrap();
        engine.run_sync_rounds(6);
        // Identical RNG consumption: the embedded swarm equals the swarm
        // of build_swarm run through the round engine (the event engine
        // reproduces the indexed-stream semantics of
        // `run_rounds_parallel`, not the legacy sequential `run_rounds`).
        let mut swarm = scenario.build_swarm(&mut rng(4)).unwrap();
        swarm.run_rounds_parallel(6, 2);
        assert_eq!(engine.swarm().completed_count(), swarm.completed_count());
        for p in 0..swarm.peer_count() {
            assert_eq!(
                engine.swarm().peer(p).total_downloaded().to_bits(),
                swarm.peer(p).total_downloaded().to_bits(),
                "peer {p} download totals diverge"
            );
        }
        engine.swarm().validate_consistency();
    }

    #[test]
    fn event_engine_rejects_missing_or_conflicting_sections() {
        let base = Scenario::new("t", 10)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 6.0 })
            .with_capacity(CapacityModel::Constant { value: 300.0 });
        // No swarm section at all.
        assert!(matches!(
            base.clone().build_event_engine(&mut rng(1)),
            Err(ScenarioError::MissingSwarm)
        ));
        // Swarm section without timing.
        let untimed = base.clone().with_swarm(SwarmParams::default());
        assert!(matches!(
            untimed.build_event_engine(&mut rng(1)),
            Err(ScenarioError::MissingTiming)
        ));
        // Fluid-content swarms are rejected.
        let fluid = base.clone().with_swarm(SwarmParams {
            fluid_content: true,
            timing: Some(EventTiming::default()),
            ..SwarmParams::default()
        });
        assert!(matches!(
            fluid.build_event_engine(&mut rng(1)),
            Err(ScenarioError::InvalidParameter {
                what: "swarm timing",
                ..
            })
        ));
        // The fault plane is round-engine-only: combining it with the
        // timing axis is an error even when the plan is inert.
        let faulted = base.clone().with_swarm(SwarmParams {
            timing: Some(EventTiming::default()),
            faults: Some(FaultPlan::none()),
            ..SwarmParams::default()
        });
        assert!(matches!(
            faulted.build_event_engine(&mut rng(1)),
            Err(ScenarioError::InvalidParameter {
                what: "swarm timing",
                ..
            })
        ));
        // Malformed timing surfaces as an error, not a panic.
        let bad = base.with_swarm(SwarmParams {
            timing: Some(EventTiming {
                rechoke_interval: 0.0,
                ..EventTiming::default()
            }),
            ..SwarmParams::default()
        });
        assert!(matches!(
            bad.build_event_engine(&mut rng(1)),
            Err(ScenarioError::InvalidParameter {
                what: "swarm timing",
                ..
            })
        ));
    }

    #[test]
    fn universe_scenario_builds_and_runs() {
        let scenario = Scenario::new("multi", 16)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 400.0 })
            .with_swarm(SwarmParams {
                seeds: 2,
                piece_count: 32,
                piece_size_kbit: 150.0,
                churn: Some(SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 1.5 },
                    arrival_upload_kbps: 400.0,
                    target_degree: 8,
                    ..SessionConfig::default()
                }),
                universe: Some(UniverseParams {
                    torrents: 3,
                    popularity_skew: 1.0,
                    ..UniverseParams::default()
                }),
                ..SwarmParams::default()
            });
        let mut universe = scenario.build_universe(&mut rng(5)).unwrap();
        assert_eq!(universe.torrent_count(), 3);
        universe.run_rounds(6, None);
        assert!(universe.stats().cross_joins > 0);
        for t in 0..3 {
            universe.session(t).swarm().validate_consistency();
        }
        // Popularity-scaled arrivals: the rate sum is the base rate times
        // the torrent count, shared out by the Zipf weights.
        let rates: Vec<f64> = (0..3)
            .map(|t| match universe.session(t).config().arrival {
                ArrivalProcess::Poisson { rate } => rate,
                ref other => panic!("expected Poisson arrivals, got {other:?}"),
            })
            .collect();
        assert!((rates.iter().sum::<f64>() - 1.5 * 3.0).abs() < 1e-9);
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
        // Deterministic: same stream, same universe.
        let mut again = scenario.build_universe(&mut rng(5)).unwrap();
        again.run_rounds(6, None);
        assert_eq!(again.stats(), universe.stats());
    }

    #[test]
    fn one_torrent_universe_embeds_the_session_build() {
        let scenario = Scenario::new("multi1", 20)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 400.0 })
            .with_swarm(SwarmParams {
                seeds: 2,
                piece_count: 32,
                piece_size_kbit: 150.0,
                churn: Some(SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 2.0 },
                    arrival_upload_kbps: 400.0,
                    target_degree: 8,
                    ..SessionConfig::default()
                }),
                universe: Some(UniverseParams {
                    torrents: 1,
                    ..UniverseParams::default()
                }),
                ..SwarmParams::default()
            });
        let mut universe = scenario.build_universe(&mut rng(9)).unwrap();
        universe.run_rounds(10, None);
        let mut session = scenario.build_session(&mut rng(9)).unwrap();
        session.run_rounds(10);
        assert_eq!(universe.session(0).stats(), session.stats());
        for p in 0..session.swarm().peer_count() {
            assert_eq!(
                universe
                    .session(0)
                    .swarm()
                    .peer(p)
                    .total_downloaded()
                    .to_bits(),
                session.swarm().peer(p).total_downloaded().to_bits(),
                "peer {p} download totals diverge"
            );
        }
    }

    #[test]
    fn universe_rejects_missing_or_conflicting_sections() {
        let base = Scenario::new("t", 10)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 6.0 })
            .with_capacity(CapacityModel::Constant { value: 300.0 });
        // No swarm section at all.
        assert!(matches!(
            base.clone().build_universe(&mut rng(1)),
            Err(ScenarioError::MissingSwarm)
        ));
        // Swarm section without universe.
        let single = base.clone().with_swarm(SwarmParams::default());
        assert!(matches!(
            single.build_universe(&mut rng(1)),
            Err(ScenarioError::MissingUniverse)
        ));
        // Universe without churn (the arrival process drives membership).
        let churnless = base.clone().with_swarm(SwarmParams {
            universe: Some(UniverseParams::default()),
            ..SwarmParams::default()
        });
        assert!(matches!(
            churnless.build_universe(&mut rng(1)),
            Err(ScenarioError::MissingChurn)
        ));
        let with_universe = |mutate: fn(&mut SwarmParams)| {
            let mut params = SwarmParams {
                churn: Some(SessionConfig::default()),
                universe: Some(UniverseParams::default()),
                ..SwarmParams::default()
            };
            mutate(&mut params);
            base.clone().with_swarm(params)
        };
        // Fault plans, the event clock, and compaction all conflict.
        for scenario in [
            with_universe(|p| p.faults = Some(FaultPlan::none())),
            with_universe(|p| p.timing = Some(EventTiming::default())),
            with_universe(|p| {
                p.churn.as_mut().unwrap().compact_threshold = Some(0.5);
            }),
            with_universe(|p| p.fluid_content = true),
            with_universe(|p| {
                p.universe.as_mut().unwrap().popularity_skew = -1.0;
            }),
            with_universe(|p| p.universe.as_mut().unwrap().torrents = 0),
            with_universe(|p| {
                p.universe.as_mut().unwrap().class_upload_kbps = vec![-5.0];
            }),
        ] {
            assert!(matches!(
                scenario.build_universe(&mut rng(1)),
                Err(ScenarioError::InvalidParameter {
                    what: "swarm universe",
                    ..
                })
            ));
        }
    }

    #[test]
    fn missing_swarm_section_is_an_error() {
        let scenario = Scenario::new("t", 10);
        assert!(matches!(
            scenario.build_swarm(&mut rng(1)),
            Err(ScenarioError::MissingSwarm)
        ));
    }

    #[test]
    fn same_stream_same_instance() {
        let scenario = Scenario::new("t", 80)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 9.0 })
            .with_capacity(CapacityModel::RoundedNormal {
                mean: 3.0,
                sigma: 0.4,
            });
        let a = scenario.build_dynamics(&mut stream_rng(7, 3)).unwrap();
        let b = scenario.build_dynamics(&mut stream_rng(7, 3)).unwrap();
        let (a, b) = (a.as_ranked().unwrap(), b.as_ranked().unwrap());
        assert_eq!(a.acceptance(), b.acceptance());
        assert_eq!(a.capacities(), b.capacities());
        let c = scenario.build_dynamics(&mut stream_rng(7, 4)).unwrap();
        assert_ne!(a.capacities(), c.capacities());
    }

    #[test]
    fn latency_preferences_build_the_general_arm() {
        let scenario = Scenario::new("t", 60)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 10.0 })
            .with_capacity(CapacityModel::Constant { value: 2.0 })
            .with_preference(PreferenceModel::Latency { span: 500.0 });
        let built = scenario.build_dynamics(&mut rng(9)).unwrap();
        assert!(built.as_general().is_some());
        assert_eq!(built.node_count(), 60);
        // Deterministic: same stream, same instance.
        let mut a = scenario.build_dynamics(&mut rng(9)).unwrap();
        let mut b = scenario.build_dynamics(&mut rng(9)).unwrap();
        let mut rng_a = rng(10);
        let mut rng_b = rng(10);
        for _ in 0..5 {
            a.run_base_unit(&mut rng_a);
            b.run_base_unit(&mut rng_b);
        }
        assert_eq!(a.matching(), b.matching());
    }

    #[test]
    fn latency_at_stable_is_stable_with_zero_disorder() {
        let scenario = Scenario::new("t", 50)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 9.0 })
            .with_capacity(CapacityModel::Constant { value: 2.0 })
            .with_preference(PreferenceModel::BandedRankLatency {
                class_width: 10,
                span: 300.0,
            });
        let built = scenario.build_dynamics_at_stable(&mut rng(4)).unwrap();
        assert!(built.as_general().is_some());
        assert!(built.is_stable());
        assert_eq!(built.disorder(), 0.0);
        // Counter parity with the ranked arm: building at-stable reports no
        // pre-existing initiative activity.
        assert_eq!(built.initiative_count(), 0);
        assert_eq!(built.active_initiative_count(), 0);
    }

    #[test]
    fn latency_churn_drives_the_general_arm() {
        let scenario = Scenario::new("t", 40)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 8.0 })
            .with_capacity(CapacityModel::Constant { value: 1.0 })
            .with_preference(PreferenceModel::Latency { span: 100.0 })
            .with_churn(ChurnModel::Rate { rate: 0.05 });
        let mut churn = scenario.build_churn(&mut rng(6)).unwrap();
        let mut r = rng(7);
        for _ in 0..10 {
            churn.run_base_unit(&mut r);
        }
        assert!(churn.event_count() > 0);
        assert!(churn.dynamics().as_general().is_some());
        // Population pinned at n or n - 1 by replacement churn.
        assert!((39..=40).contains(&churn.dynamics().present_count()));
        // Disorder reads cleanly on the general arm under churn.
        assert!(churn.dynamics().disorder() >= 0.0);
    }

    #[test]
    fn invalid_latency_span_rejected() {
        let scenario = Scenario::new("t", 10)
            .with_preference(PreferenceModel::Latency { span: 0.0 })
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 4.0 });
        assert!(matches!(
            scenario.build_dynamics(&mut rng(1)),
            Err(ScenarioError::InvalidParameter { .. })
        ));
        let banded = Scenario::new("t", 10)
            .with_preference(PreferenceModel::BandedRankLatency {
                class_width: 0,
                span: 10.0,
            })
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 4.0 });
        assert!(matches!(
            banded.build_dynamics(&mut rng(1)),
            Err(ScenarioError::InvalidParameter { .. })
        ));
    }
}
