//! Errors raised while validating or building scenarios.

use strat_core::ModelError;
use strat_graph::GraphError;

/// Why a [`Scenario`](crate::Scenario) could not be built or parsed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A model parameter is out of its domain.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// The capacity model cannot be interpreted in the requested unit
    /// (e.g. Saroiu bandwidths asked for as collaboration slots).
    CapacityUnit {
        /// The offending model, rendered for the message.
        model: String,
        /// The unit the caller asked for.
        wanted: &'static str,
    },
    /// An explicit value list does not cover the peer count.
    SizeMismatch {
        /// Peers the scenario declares.
        expected: usize,
        /// Values actually provided.
        actual: usize,
    },
    /// A swarm build was requested but the scenario has no `swarm` section.
    MissingSwarm,
    /// A session build was requested but the swarm section has no `churn`
    /// sub-section.
    MissingChurn,
    /// An event-engine build was requested but the swarm section has no
    /// `timing` sub-section.
    MissingTiming,
    /// A universe build was requested but the swarm section has no
    /// `universe` sub-section.
    MissingUniverse,
    /// The underlying graph construction failed.
    Graph(GraphError),
    /// The underlying matching-model construction failed.
    Model(ModelError),
    /// JSON parsing or schema walking failed.
    Parse(String),
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::InvalidParameter { what, reason } => {
                write!(f, "invalid {what}: {reason}")
            }
            ScenarioError::CapacityUnit { model, wanted } => {
                write!(f, "capacity model {model} cannot provide {wanted}")
            }
            ScenarioError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "explicit values cover {actual} peers, scenario declares {expected}"
                )
            }
            ScenarioError::MissingSwarm => {
                write!(f, "scenario has no `swarm` section; cannot build a swarm")
            }
            ScenarioError::MissingChurn => {
                write!(
                    f,
                    "swarm section has no `churn` sub-section; cannot build a session"
                )
            }
            ScenarioError::MissingTiming => {
                write!(
                    f,
                    "swarm section has no `timing` sub-section; cannot build an event engine"
                )
            }
            ScenarioError::MissingUniverse => {
                write!(
                    f,
                    "swarm section has no `universe` sub-section; cannot build a universe"
                )
            }
            ScenarioError::Graph(e) => write!(f, "topology: {e}"),
            ScenarioError::Model(e) => write!(f, "model: {e}"),
            ScenarioError::Parse(msg) => write!(f, "scenario JSON: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<GraphError> for ScenarioError {
    fn from(e: GraphError) -> Self {
        ScenarioError::Graph(e)
    }
}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

impl From<serde_json::ParseError> for ScenarioError {
    fn from(e: serde_json::ParseError) -> Self {
        ScenarioError::Parse(e.to_string())
    }
}
