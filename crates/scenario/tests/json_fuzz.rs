//! Fuzz the scenario JSON ingestion path: [`Scenario::from_json`] must
//! **never panic**, whatever bytes it is handed — malformed input must
//! surface as [`ScenarioError`], the typed-error contract of the parsing
//! layer. Three generators:
//!
//! * random byte soup (overwhelmingly not JSON at all);
//! * random *mutations* of real preset encodings (truncations, splices,
//!   byte flips) — structurally close to valid, the regime where sloppy
//!   `unwrap`s hide;
//! * structure-aware token swaps (renaming keys/variants, number →
//!   string, deleting fields), which exercise every `require`/type-check
//!   arm.
//!
//! Valid inputs must keep round-tripping, so the fuzzing can't pass by
//! rejecting everything.

use proptest::prelude::*;
use strat_scenario::{
    ArrivalProcess, BehaviorMix, CapacityModel, ChurnModel, DepartureRules, FaultPlan, FaultWindow,
    PreferenceModel, Scenario, SessionConfig, SwarmParams, TopologyModel,
};

/// A corpus of realistic encodings to mutate — one per structural shape
/// (minimal, swarm-bearing, churn-bearing, fault-bearing, explicit axes).
fn corpus() -> Vec<String> {
    let minimal = Scenario::new("fuzz-min", 12);
    let swarm = Scenario::new("fuzz-swarm", 40)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 9.0 })
        .with_capacity(CapacityModel::SaroiuShuffled { shuffle_seed: 5 })
        .with_swarm(SwarmParams {
            seeds: 2,
            behavior: BehaviorMix {
                free_riders: 3,
                altruists: 1,
            },
            ..SwarmParams::default()
        });
    let churny = Scenario::new("fuzz-churn", 30).with_swarm(SwarmParams {
        churn: Some(SessionConfig {
            arrival: ArrivalProcess::Trace {
                arrivals: vec![(2, 4), (7, 1)],
            },
            departure: DepartureRules {
                leave_on_completion: 0.4,
                seed_leave_prob: 0.2,
                seed_exodus_round: Some(50),
                abort_prob: 0.02,
            },
            ..SessionConfig::default()
        }),
        ..SwarmParams::default()
    });
    let faulty = Scenario::new("fuzz-faults", 25).with_swarm(SwarmParams {
        churn: Some(SessionConfig::default()),
        faults: Some(FaultPlan {
            crash_prob: 0.01,
            loss_prob: 0.1,
            outages: vec![FaultWindow {
                start: 3,
                rounds: 2,
            }],
            partitions: vec![FaultWindow {
                start: 9,
                rounds: 5,
            }],
            fault_seed: 77,
        }),
        ..SwarmParams::default()
    });
    let explicit = Scenario::new("fuzz-explicit", 3)
        .with_topology(TopologyModel::Explicit {
            edges: vec![(0, 1), (1, 2)],
        })
        .with_capacity(CapacityModel::Explicit {
            values: vec![2.0, 1.0, 1.0],
        })
        .with_preference(PreferenceModel::BandedRankLatency {
            class_width: 5,
            span: 200.0,
        })
        .with_churn(ChurnModel::PoissonPerBaseUnit {
            events_per_base_unit: 1.5,
        });
    [minimal, swarm, churny, faulty, explicit]
        .iter()
        .flat_map(|s| [s.to_json(), s.to_json_pretty()])
        .collect()
}

/// The property under test: parsing either fails with a typed error or
/// yields a scenario whose re-encoding parses back to the same value.
fn never_panics(input: &str) {
    if let Ok(scenario) = Scenario::from_json(input) {
        let reparsed = Scenario::from_json(&scenario.to_json()).expect("re-encoding parses");
        assert_eq!(reparsed, scenario);
    }
}

/// Structure-aware token rewrites keyed off a selector byte.
fn token_mutate(json: &str, selector: u8) -> String {
    match selector % 10 {
        0 => json.replacen("\"name\"", "\"nom\"", 1),
        1 => json.replacen("Constant", "Konstant", 1),
        2 => json.replacen(':', ";", 1),
        3 => json.replacen("null", "nul", 2),
        4 => json.replacen('{', "[", 1),
        5 => json.replacen('}', "", 1),
        6 => json.replace("\"seed\"", "\"seed\":true,\"x\""),
        7 => json.replacen("\"crash_prob\"", "\"crash\"", 1),
        8 => json.replacen("\"start\"", "\"stard\"", 1),
        _ => json.replace(',', ",,"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        never_panics(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn mutated_presets_never_panic(
        which in 0usize..10,
        cut_start in 0usize..2000,
        cut_len in 0usize..200,
        splice in proptest::collection::vec(any::<u8>(), 0..32),
        flips in proptest::collection::vec((0usize..2000, any::<u8>()), 0..6),
    ) {
        let corpus = corpus();
        let mut bytes = corpus[which % corpus.len()].clone().into_bytes();
        // Byte flips.
        for &(pos, val) in &flips {
            if !bytes.is_empty() {
                let pos = pos % bytes.len();
                bytes[pos] = val;
            }
        }
        // Cut a window and splice random bytes in its place.
        if !bytes.is_empty() {
            let start = cut_start % bytes.len();
            let end = (start + cut_len).min(bytes.len());
            bytes.splice(start..end, splice.iter().copied());
        }
        never_panics(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn token_mutations_never_panic(
        which in 0usize..10,
        selectors in proptest::collection::vec(any::<u8>(), 1..4),
    ) {
        let corpus = corpus();
        let mut json = corpus[which % corpus.len()].clone();
        for &s in &selectors {
            json = token_mutate(&json, s);
        }
        never_panics(&json);
    }
}

#[test]
fn corpus_itself_round_trips() {
    for json in corpus() {
        let parsed = Scenario::from_json(&json).expect("corpus entries parse");
        assert_eq!(Scenario::from_json(&parsed.to_json()).unwrap(), parsed);
    }
}

#[test]
fn hostile_literals_are_typed_errors() {
    for input in [
        "",
        "{",
        "[]",
        "true",
        "\"scenario\"",
        "{\"name\": 3}",
        "{\"name\": \"x\", \"experiment\": \"x\", \"seed\": -1}",
        // Deeply nested arrays probe parser recursion.
        &("[".repeat(400) + &"]".repeat(400)),
        // A swarm section of the wrong shape.
        r#"{"name":"x","experiment":"x","seed":1,"peers":2,
            "capacity":{"Constant":{"value":1}},"topology":"Complete",
            "preference":"GlobalRank","churn":"None","strategy":"BestMate",
            "swarm":{"seeds":"many"}}"#,
        // A faults section of the wrong shape.
        r#"{"name":"x","experiment":"x","seed":1,"peers":2,
            "capacity":{"Constant":{"value":1}},"topology":"Complete",
            "preference":"GlobalRank","churn":"None","strategy":"BestMate",
            "swarm":{"seeds":1,"seed_upload_kbps":1000.0,"tft_slots":3,
              "optimistic_slots":1,"optimistic_period":3,"piece_count":8,
              "piece_size_kbit":100.0,"round_seconds":10.0,
              "initial_completion":0.4,"seed_after_completion":true,
              "fluid_content":false,"swarm_seed":1,
              "behavior":{"free_riders":0,"altruists":0},
              "faults":{"crash_prob":[]}}}"#,
    ] {
        assert!(Scenario::from_json(input).is_err(), "accepted: {input}");
    }
}
