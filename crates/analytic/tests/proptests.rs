//! Property-based tests for the analytic solvers.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_analytic::{b_matching, exact, one_matching};

proptest! {
    /// Algorithm 2 rows are symmetric subprobability vectors with zero
    /// diagonal, for arbitrary (n, p).
    #[test]
    fn algorithm2_rows_are_subprobabilities(
        n in 2usize..120,
        p in 0.0f64..=1.0,
    ) {
        let peers: Vec<usize> = (0..n).step_by((n / 6).max(1)).collect();
        let sol = one_matching::solve(n, p, &peers);
        for &i in &peers {
            let row = sol.row(i).expect("requested");
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!((row.iter().sum::<f64>() - sol.match_probability(i)).abs() < 1e-9);
            prop_assert!(sol.match_probability(i) <= 1.0 + 1e-12);
            prop_assert_eq!(row[i], 0.0);
        }
    }

    /// Streaming and dense Algorithm 2 agree everywhere.
    #[test]
    fn streaming_equals_dense(n in 2usize..60, p in 0.0f64..=1.0) {
        let dense = one_matching::solve_dense(n, p);
        let peers: Vec<usize> = (0..n).collect();
        let stream = one_matching::solve(n, p, &peers);
        for i in 0..n {
            let row = stream.row(i).expect("requested");
            for j in 0..n {
                prop_assert!((row[j] - dense[i][j]).abs() < 1e-12, "D({},{})", i, j);
            }
        }
    }

    /// Algorithm 3 with b0 = 1 reduces to Algorithm 2 for arbitrary inputs.
    #[test]
    fn b1_reduction(n in 2usize..80, p in 0.0f64..1.0) {
        let mid = n / 2;
        let one = one_matching::solve(n, p, &[mid]);
        let b = b_matching::solve(n, p, 1, &[mid]);
        let (r1, rb) = (one.row(mid).unwrap(), b.choice_row(mid, 1).unwrap());
        for j in 0..n {
            prop_assert!((r1[j] - rb[j]).abs() < 1e-12);
        }
    }

    /// Per-choice masses are decreasing in the choice index and the
    /// expected degree never exceeds b0.
    #[test]
    fn choice_masses_are_monotone(
        n in 4usize..80,
        p in 0.0f64..0.5,
        b0 in 1u32..4,
    ) {
        let mid = n / 2;
        let sol = b_matching::solve(n, p, b0, &[mid]);
        let mut prev = f64::INFINITY;
        for c in 1..=b0 {
            let mass = sol.choice_mass(mid, c);
            prop_assert!(mass <= prev + 1e-12, "choice {} mass {} above previous", c, mass);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mass));
            prev = mass;
        }
        prop_assert!(sol.expected_degree(mid) <= f64::from(b0) + 1e-9);
    }

    /// `solve_expectations` agrees with explicitly materialized rows for
    /// arbitrary weights.
    #[test]
    fn expectations_agree_with_rows(
        n in 4usize..60,
        p in 0.0f64..0.4,
        b0 in 1u32..4,
        scale in 0.1f64..100.0,
    ) {
        let weights: Vec<f64> = (0..n).map(|j| scale * (n - j) as f64).collect();
        let exp = b_matching::solve_expectations(n, p, b0, &weights);
        let peers: Vec<usize> = (0..n).collect();
        let rows = b_matching::solve(n, p, b0, &peers);
        for i in (0..n).step_by((n / 5).max(1)) {
            let explicit: f64 = (1..=b0)
                .map(|c| {
                    rows.choice_row(i, c)
                        .unwrap()
                        .iter()
                        .zip(&weights)
                        .map(|(d, w)| d * w)
                        .sum::<f64>()
                })
                .sum();
            prop_assert!(
                (exp.weighted[i] - explicit).abs() < 1e-6 * explicit.abs().max(1.0),
                "peer {}: {} vs {}", i, exp.weighted[i], explicit
            );
        }
    }

    /// Exact enumeration stays close to the independence model when p is
    /// small (§5.1.2) for any tiny instance.
    #[test]
    fn independence_error_small_for_small_p(
        n in 3usize..6,
        p in 0.001f64..0.08,
    ) {
        let exact_d = exact::exact_distribution(n, p, 1);
        let peers: Vec<usize> = (0..n).collect();
        let approx = one_matching::solve(n, p, &peers);
        for i in 0..n {
            for j in 0..n {
                let err = (exact_d[i][j] - approx.row(i).unwrap()[j]).abs();
                // Leading error term is O(p^3).
                prop_assert!(err < 10.0 * p * p * p + 1e-12, "D({},{}) err {}", i, j, err);
            }
        }
    }
}
