//! Algorithm 2: the independent 1-matching mate distribution (§5.1–5.2).
//!
//! Under the independence assumption (Assumption 1), the probability
//! `D(i, j)` that peer `i` is matched with peer `j` on an Erdős–Rényi
//! acceptance graph with edge probability `p` obeys the recurrence
//!
//! ```text
//! D(i, j) = p · (1 − Σ_{k<j} D(i, k)) · (1 − Σ_{k<i} D(j, k))     (Eq. 2)
//! ```
//!
//! (indices are ranks, best first). The paper's Algorithm 2 fills the full
//! `n × n` matrix; this implementation streams the computation with running
//! prefix sums — `O(n)` memory plus one `O(n)` buffer per *requested* row —
//! so the paper's `n = 5000` (Figure 8) runs in milliseconds. The
//! distribution is *n-free*: `D(i, j)` does not depend on `n` (§5.1.1), so
//! truncation only cuts the tail.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Solution of the independent 1-matching recurrence.
///
/// Holds full distribution rows for the peers requested at solve time plus
/// the total match probability for *every* peer.
///
/// # Examples
///
/// Reproduce a slice of Figure 8 (mate distribution of a mid-rank peer):
///
/// ```
/// use strat_analytic::one_matching::solve;
///
/// let sol = solve(500, 0.05, &[250]);
/// let row = sol.row(250).unwrap();
/// // The distribution is centred near the peer's own rank: stratification.
/// let mode = (0..500).max_by(|&a, &b| row[a].total_cmp(&row[b])).unwrap();
/// assert!((mode as i64 - 250).abs() < 25, "mode {mode}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MateDistribution {
    n: usize,
    p: f64,
    /// Full rows `D(i, ·)` for requested peers `i` (0-based ranks).
    rows: BTreeMap<usize, Vec<f64>>,
    /// `mass[i] = Σ_j D(i, j)` — total probability of being matched.
    mass: Vec<f64>,
}

impl MateDistribution {
    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Full mate distribution `D(i, ·)` of peer `i`, if requested at solve
    /// time.
    #[must_use]
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        self.rows.get(&i).map(Vec::as_slice)
    }

    /// Total match probability `Σ_j D(i, j)` of peer `i`.
    ///
    /// By Lemma 1 this tends to 1 as peers are added below `i`; the worst
    /// peers retain a visible unmatched probability (Figure 8c).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn match_probability(&self, i: usize) -> f64 {
        self.mass[i]
    }

    /// Probability that peer `i` ends up unmatched (`1 − match_probability`).
    #[must_use]
    pub fn unmatched_probability(&self, i: usize) -> f64 {
        (1.0 - self.mass[i]).max(0.0)
    }

    /// Ranks of requested rows.
    pub fn requested(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.keys().copied()
    }
}

/// Solves the independent 1-matching recurrence for `n` peers and edge
/// probability `p`, retaining full rows for `peers`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]` or any requested peer is `>= n`.
#[must_use]
pub fn solve(n: usize, p: f64, peers: &[usize]) -> MateDistribution {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    let mut rows: BTreeMap<usize, Vec<f64>> = peers
        .iter()
        .map(|&i| {
            assert!(i < n, "requested peer {i} out of range for n = {n}");
            (i, vec![0.0; n])
        })
        .collect();
    let mut mass = vec![0.0; n];
    // colcum[j] = Σ_{k<i} D(k, j) while processing row i.
    let mut colcum = vec![0.0f64; n];
    for i in 0..n {
        // Σ_{k<i} D(i, k): symmetric entries already computed.
        let mut rowcum = colcum[i];
        for j in (i + 1)..n {
            let d = p * (1.0 - rowcum) * (1.0 - colcum[j]);
            rowcum += d;
            colcum[j] += d;
            if d != 0.0 {
                if let Some(row) = rows.get_mut(&i) {
                    row[j] = d;
                }
                if let Some(row) = rows.get_mut(&j) {
                    row[i] = d;
                }
            }
        }
        mass[i] = rowcum;
    }
    MateDistribution { n, p, rows, mass }
}

/// Dense solver filling the full `D` matrix, exactly as the paper's
/// Algorithm 2 pseudo-code. `O(n²)` memory — the ablation baseline for the
/// streaming [`solve`]; use it only for small `n`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
#[must_use]
pub fn solve_dense(n: usize, p: f64) -> Vec<Vec<f64>> {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let si: f64 = (0..j).map(|k| d[i][k]).sum();
            let sj: f64 = (0..i).map(|k| d[j][k]).sum();
            let v = p * (1.0 - si) * (1.0 - sj);
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_dense() {
        let n = 60;
        let p = 0.1;
        let dense = solve_dense(n, p);
        let peers: Vec<usize> = (0..n).collect();
        let streaming = solve(n, p, &peers);
        for i in 0..n {
            let row = streaming.row(i).unwrap();
            for j in 0..n {
                assert!(
                    (row[j] - dense[i][j]).abs() < 1e-12,
                    "D({i},{j}): {} vs {}",
                    row[j],
                    dense[i][j]
                );
            }
        }
    }

    #[test]
    fn first_pair_probability_is_p() {
        // D(0, 1) = p exactly: the two best peers match iff connected.
        let sol = solve(10, 0.37, &[0]);
        assert!((sol.row(0).unwrap()[1] - 0.37).abs() < 1e-15);
    }

    #[test]
    fn best_peer_row_is_truncated_geometric() {
        // D(0, j) = p (1 - p)^{j-1}: peer 0 matches its best connected peer.
        let p = 0.2;
        let sol = solve(50, p, &[0]);
        let row = sol.row(0).unwrap();
        for j in 1..20 {
            let expected = p * (1.0 - p).powi(j as i32 - 1);
            assert!((row[j] - expected).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn rows_are_symmetric_subprobabilities() {
        let sol = solve(200, 0.05, &[10, 100, 190]);
        for i in [10usize, 100, 190] {
            let row = sol.row(i).unwrap();
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            assert!((row.iter().sum::<f64>() - sol.match_probability(i)).abs() < 1e-9);
            assert!(sol.match_probability(i) <= 1.0 + 1e-12);
            assert_eq!(row[i], 0.0, "D(i,i) must be 0");
        }
    }

    #[test]
    fn symmetry_d_ij_equals_d_ji() {
        let peers: Vec<usize> = (0..30).collect();
        let sol = solve(30, 0.15, &peers);
        for i in 0..30 {
            for j in 0..30 {
                let dij = sol.row(i).unwrap()[j];
                let dji = sol.row(j).unwrap()[i];
                assert!((dij - dji).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn lemma1_mass_approaches_one_with_peers_below() {
        // Adding many peers below rank i drives the match probability to 1.
        let sol = solve(2000, 0.01, &[]);
        assert!(
            sol.match_probability(100) > 0.999,
            "{}",
            sol.match_probability(100)
        );
        // The worst peer matches in roughly half the cases (§5.3).
        let last = sol.match_probability(1999);
        assert!((last - 0.5).abs() < 0.05, "worst peer mass {last}");
    }

    #[test]
    fn truncation_consistency() {
        // n-freeness (§5.1.1): D(i, j) computed with n = 100 equals the
        // restriction of the n = 300 solution.
        let small = solve(100, 0.08, &[20]);
        let large = solve(300, 0.08, &[20]);
        let (rs, rl) = (small.row(20).unwrap(), large.row(20).unwrap());
        for j in 0..100 {
            assert!((rs[j] - rl[j]).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn extreme_p_values() {
        let sol = solve(10, 0.0, &[0]);
        assert!(sol.row(0).unwrap().iter().all(|&x| x == 0.0));
        assert_eq!(sol.match_probability(5), 0.0);

        let sol = solve(10, 1.0, &[0, 1]);
        // Complete graph: consecutive pairs match with certainty.
        assert_eq!(sol.row(0).unwrap()[1], 1.0);
        assert_eq!(sol.row(1).unwrap()[0], 1.0);
        assert!(sol.row(0).unwrap()[2] == 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_peer_request_panics() {
        let _ = solve(5, 0.5, &[7]);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn bad_p_panics() {
        let _ = solve(5, -0.1, &[]);
    }
}
