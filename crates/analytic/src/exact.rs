//! Exact mate distributions by exhaustive graph enumeration (Figure 7).
//!
//! For tiny `n`, every Erdős–Rényi realization can be enumerated: there are
//! `2^(n(n−1)/2)` possible graphs, each with probability
//! `p^e (1−p)^(E−e)`. Computing the unique stable matching of each graph
//! (Algorithm 1) and accumulating probabilities yields the **exact**
//! `D(i, j)` — the gold standard against which the independence
//! approximation of Algorithms 2–3 is measured.
//!
//! The paper's Figure 7 works this out for `n = 3`:
//!
//! ```text
//! D_exact(1,2) = p,   D_exact(1,3) = p(1−p),   D_exact(2,3) = p(1−p)²
//! ```
//!
//! while Algorithm 2 yields `D(2,3) = p(1−p)(1 − p(1−p))`, an excess of
//! exactly `p³(1−p)`.

use strat_core::{stable_configuration, Capacities, GlobalRanking, RankedAcceptance};
use strat_graph::{Graph, NodeId};

/// Exact mate distribution for `b₀`-matching on `G(n, p)`, by enumerating
/// all `2^(n(n−1)/2)` graphs.
///
/// Returns the matrix `D[i][j]` = probability that `i` and `j` are matched
/// (any choice index).
///
/// # Panics
///
/// Panics if `n > 8` (enumeration would exceed 2²⁸ graphs) or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// let p = 0.3;
/// let d = strat_analytic::exact::exact_distribution(3, p, 1);
/// assert!((d[0][1] - p).abs() < 1e-12);
/// assert!((d[0][2] - p * (1.0 - p)).abs() < 1e-12);
/// assert!((d[1][2] - p * (1.0 - p) * (1.0 - p)).abs() < 1e-12);
/// ```
#[must_use]
pub fn exact_distribution(n: usize, p: f64, b0: u32) -> Vec<Vec<f64>> {
    assert!(n <= 8, "exact enumeration supports n <= 8, got {n}");
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    let ranking = GlobalRanking::identity(n);
    let caps = Capacities::constant(n, b0);
    let pair_count = n * n.saturating_sub(1) / 2;
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let mut d = vec![vec![0.0f64; n]; n];
    for mask in 0u64..(1u64 << pair_count) {
        let edges = mask.count_ones() as i32;
        let prob = p.powi(edges) * (1.0 - p).powi(pair_count as i32 - edges);
        if prob == 0.0 {
            continue;
        }
        let mut builder = Graph::builder(n);
        for (bit, &(i, j)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                builder
                    .add_edge(NodeId::new(i), NodeId::new(j))
                    .expect("valid pair");
            }
        }
        let acc = RankedAcceptance::new(builder.build(), ranking.clone()).expect("sizes match");
        let m = stable_configuration(&acc, &caps).expect("sizes match");
        for i in 0..n {
            for &mate in m.mates(NodeId::new(i)) {
                // Each link is visited from both endpoints, filling d[i][j]
                // and d[j][i] symmetrically.
                d[i][mate.index()] += prob;
            }
        }
    }
    d
}

/// The paper's closed forms for `n = 3`, 1-matching (Figure 7).
///
/// Returns `(D(1,2), D(1,3), D(2,3))` in the paper's 1-based labels.
#[must_use]
pub fn figure7_exact(p: f64) -> (f64, f64, f64) {
    (p, p * (1.0 - p), p * (1.0 - p) * (1.0 - p))
}

/// Algorithm 2's approximation for `n = 3` and the paper's derived error:
/// `D(2,3) = D_exact(2,3) + p³(1−p)`.
///
/// Returns `(D(1,2), D(1,3), D(2,3))`.
#[must_use]
pub fn figure7_approx(p: f64) -> (f64, f64, f64) {
    let d23 = p * (1.0 - p) * (1.0 - p * (1.0 - p));
    (p, p * (1.0 - p), d23)
}

#[cfg(test)]
mod tests {
    use crate::one_matching;

    use super::*;

    #[test]
    fn figure7_closed_forms_match_enumeration() {
        for p in [0.1, 0.3, 0.5, 0.9] {
            let d = exact_distribution(3, p, 1);
            let (d12, d13, d23) = figure7_exact(p);
            assert!((d[0][1] - d12).abs() < 1e-12, "p={p}");
            assert!((d[0][2] - d13).abs() < 1e-12, "p={p}");
            assert!((d[1][2] - d23).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn approximation_error_is_p3_1mp() {
        for p in [0.05, 0.2, 0.5, 0.8] {
            let (_, _, exact) = figure7_exact(p);
            let (_, _, approx) = figure7_approx(p);
            let err = approx - exact;
            assert!(
                (err - p.powi(3) * (1.0 - p)).abs() < 1e-12,
                "p={p}: err {err}"
            );
        }
    }

    #[test]
    fn algorithm2_matches_its_closed_form_on_n3() {
        for p in [0.1, 0.4, 0.7] {
            let sol = one_matching::solve(3, p, &[0, 1, 2]);
            let (a12, a13, a23) = figure7_approx(p);
            assert!((sol.row(0).unwrap()[1] - a12).abs() < 1e-12);
            assert!((sol.row(0).unwrap()[2] - a13).abs() < 1e-12);
            assert!((sol.row(1).unwrap()[2] - a23).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_rows_are_subprobabilities() {
        let d = exact_distribution(5, 0.4, 1);
        for i in 0..5 {
            let mass: f64 = d[i].iter().sum();
            assert!((0.0..=1.0 + 1e-12).contains(&mass), "row {i} mass {mass}");
            assert_eq!(d[i][i], 0.0);
            for j in 0..5 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn approximation_close_to_exact_for_small_p() {
        // §5.1.2: the independence assumption is good when p is small.
        let n = 6;
        let p = 0.05;
        let exact = exact_distribution(n, p, 1);
        let peers: Vec<usize> = (0..n).collect();
        let approx = one_matching::solve(n, p, &peers);
        for i in 0..n {
            for j in 0..n {
                let err = (exact[i][j] - approx.row(i).unwrap()[j]).abs();
                assert!(err < 5e-4, "D({i},{j}) error {err}");
            }
        }
    }

    #[test]
    fn exact_bmatching_complete_limit() {
        // p = 1: constant 2-matching on K4 gives the clusters {0,1,2} plus
        // peer 3 matched to... on K4 with b0 = 2 the stable config is
        // 0-1, 0-2, 1-2, and then 3 left with 0 capacity around: check mass.
        let d = exact_distribution(4, 1.0, 2);
        assert!((d[0][1] - 1.0).abs() < 1e-12);
        assert!((d[0][2] - 1.0).abs() < 1e-12);
        assert!((d[1][2] - 1.0).abs() < 1e-12);
        // Peer 3's mass: everyone better is saturated.
        let mass3: f64 = d[3].iter().sum();
        assert!(
            mass3.abs() < 1e-12,
            "peer 3 should be isolated, mass {mass3}"
        );
    }

    #[test]
    #[should_panic(expected = "n <= 8")]
    fn oversized_enumeration_panics() {
        let _ = exact_distribution(9, 0.5, 1);
    }
}
