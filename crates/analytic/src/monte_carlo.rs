//! Monte-Carlo estimation of mate distributions (§5.4.3, Figure 9).
//!
//! The paper validates Algorithm 3 by drawing one million Erdős–Rényi
//! realizations (`n = 5000`, `p = 1 %`, 2-matching), computing the stable
//! configuration of each, and histogramming the first/second choices of
//! peer 3000 — "simulations requiring several weeks" on 2006 hardware.
//! This module reproduces that estimator with multi-threaded sampling
//! ([`strat_par`] scoped threads), making tens of thousands of
//! realizations a matter of seconds.
//!
//! # Determinism contract
//!
//! Every realization `r` draws from its **own** ChaCha8 stream
//! `(seed, stream = r + 1)`, so the estimate is a pure function of the
//! configuration — independent of [`MonteCarloConfig::threads`] and of OS
//! scheduling. Histograms produced with 1 thread and with N threads are
//! identical, bit for bit (covered by a unit test below).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use strat_core::{stable_configuration, Capacities, GlobalRanking, RankedAcceptance};
use strat_graph::{generators, NodeId};

/// Configuration of a Monte-Carlo estimation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of peers.
    pub n: usize,
    /// Erdős–Rényi edge probability.
    pub p: f64,
    /// Slots per peer (constant `b₀`-matching).
    pub b0: u32,
    /// Number of independent graph realizations.
    pub realizations: u64,
    /// Base RNG seed; realization `r` uses stream `r + 1` of this seed.
    pub seed: u64,
    /// Worker threads (clamped to at least 1). Changes wall-clock time
    /// only, never the result.
    pub threads: usize,
}

impl MonteCarloConfig {
    /// The paper's Figure 9 setting, scaled down to `realizations` samples.
    #[must_use]
    pub fn figure9(realizations: u64) -> Self {
        Self {
            n: 5000,
            p: 0.01,
            b0: 2,
            realizations,
            seed: 0x51a7,
            threads: strat_par::default_threads(),
        }
    }
}

/// Per-choice mate-rank histograms for one observed peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoiceHistogram {
    /// The observed peer (0-based rank).
    pub peer: usize,
    /// `counts[c][j]` = number of realizations in which choice `c+1` of the
    /// observed peer was peer `j`.
    pub counts: Vec<Vec<u64>>,
    /// Realizations in which the peer had fewer than `c+1` mates.
    pub missing: Vec<u64>,
    /// Total realizations.
    pub realizations: u64,
}

impl ChoiceHistogram {
    /// Empirical probability `D̂_c(peer, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `c ∉ 1..=b₀` or `j` is out of range.
    #[must_use]
    pub fn probability(&self, c: u32, j: usize) -> f64 {
        self.counts[(c - 1) as usize][j] as f64 / self.realizations as f64
    }

    /// Empirical probability that the peer had at least `c` mates.
    #[must_use]
    pub fn choice_mass(&self, c: u32) -> f64 {
        1.0 - self.missing[(c - 1) as usize] as f64 / self.realizations as f64
    }

    /// Empirical distribution row for choice `c` (probabilities over ranks).
    #[must_use]
    pub fn row(&self, c: u32) -> Vec<f64> {
        self.counts[(c - 1) as usize]
            .iter()
            .map(|&k| k as f64 / self.realizations as f64)
            .collect()
    }
}

/// One worker's partial histogram.
struct Partial {
    counts: Vec<Vec<u64>>,
    missing: Vec<u64>,
}

/// Estimates the per-choice mate distribution of `peer` by simulating
/// `cfg.realizations` independent acceptance graphs and computing each
/// stable configuration with Algorithm 1.
///
/// Deterministic for a fixed `cfg.seed` — **regardless of
/// `cfg.threads`** — because realization `r` always draws from stream
/// `r + 1` of the base seed (see the module docs).
///
/// # Panics
///
/// Panics if `peer >= cfg.n` or `cfg.p ∉ [0, 1]`.
#[must_use]
pub fn estimate_choice_distribution(cfg: &MonteCarloConfig, peer: usize) -> ChoiceHistogram {
    assert!(
        peer < cfg.n,
        "observed peer {peer} out of range for n = {}",
        cfg.n
    );
    assert!(
        cfg.p.is_finite() && (0.0..=1.0).contains(&cfg.p),
        "p must be in [0, 1], got {}",
        cfg.p
    );
    let b = cfg.b0 as usize;
    let ranking = GlobalRanking::identity(cfg.n);
    let caps = Capacities::constant(cfg.n, cfg.b0);

    // Contiguous blocks of realization indices; the block → worker mapping
    // is irrelevant to the result because streams are per-realization.
    let blocks = strat_par::chunk_ranges(cfg.realizations, cfg.threads.max(1));
    let partials: Vec<Partial> = strat_par::par_map(&blocks, cfg.threads.max(1), |_, block| {
        let mut partial = Partial {
            counts: vec![vec![0u64; cfg.n]; b],
            missing: vec![0u64; b],
        };
        for r in block.clone() {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
            rng.set_stream(r + 1);
            let g = generators::erdos_renyi(cfg.n, cfg.p, &mut rng);
            let acc = RankedAcceptance::new(g, ranking.clone()).expect("sizes match");
            let m = stable_configuration(&acc, &caps).expect("sizes match");
            let mates = m.mates(NodeId::new(peer));
            for c in 0..b {
                match mates.get(c) {
                    Some(mate) => partial.counts[c][mate.index()] += 1,
                    None => partial.missing[c] += 1,
                }
            }
        }
        partial
    });

    let mut counts = vec![vec![0u64; cfg.n]; b];
    let mut missing = vec![0u64; b];
    for partial in partials {
        for c in 0..b {
            for j in 0..cfg.n {
                counts[c][j] += partial.counts[c][j];
            }
            missing[c] += partial.missing[c];
        }
    }
    ChoiceHistogram {
        peer,
        counts,
        missing,
        realizations: cfg.realizations,
    }
}

/// L1 distance between an empirical row and an analytic row (both over
/// ranks), a scale-free agreement measure for Figure 9-style validations.
#[must_use]
pub fn l1_distance(empirical: &[f64], analytic: &[f64]) -> f64 {
    empirical
        .iter()
        .zip(analytic)
        .map(|(e, a)| (e - a).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use crate::b_matching;

    use super::*;

    fn small_cfg(realizations: u64) -> MonteCarloConfig {
        MonteCarloConfig {
            n: 120,
            p: 0.08,
            b0: 2,
            realizations,
            seed: 99,
            threads: 4,
        }
    }

    #[test]
    fn histogram_totals_are_consistent() {
        let cfg = small_cfg(400);
        let h = estimate_choice_distribution(&cfg, 60);
        for c in 0..2usize {
            let total: u64 = h.counts[c].iter().sum::<u64>() + h.missing[c];
            assert_eq!(total, 400, "choice {c}");
        }
        assert!(h.choice_mass(1) >= h.choice_mass(2));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = small_cfg(100);
        let a = estimate_choice_distribution(&cfg, 30);
        let b = estimate_choice_distribution(&cfg, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_matches_analytic_within_sampling_error() {
        // The Figure 9 validation in miniature: empirical vs Algorithm 3.
        let cfg = small_cfg(4000);
        let h = estimate_choice_distribution(&cfg, 60);
        let analytic = b_matching::solve(cfg.n, cfg.p, cfg.b0, &[60]);
        for c in 1..=2u32 {
            let l1 = l1_distance(&h.row(c), analytic.choice_row(60, c).unwrap());
            // L1 over ~25 effective support points with 4000 samples:
            // statistical noise ~ sqrt(k/N) ≈ 0.08; independence bias adds a
            // little. 0.25 is a conservative gate that still fails badly
            // wrong implementations (uniform rows would score ~1.9).
            assert!(l1 < 0.25, "choice {c}: L1 = {l1}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_histogram() {
        // Per-realization streams: the full histogram (not just totals) is
        // identical for every thread count.
        let mut cfg = small_cfg(60);
        let reference = estimate_choice_distribution(&cfg, 10);
        for threads in [1usize, 2, 3, 8, 64] {
            cfg.threads = threads;
            let h = estimate_choice_distribution(&cfg, 10);
            assert_eq!(h, reference, "threads = {threads}");
        }
    }

    #[test]
    fn l1_distance_basics() {
        assert_eq!(l1_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((l1_distance(&[1.0, 0.0], &[0.0, 1.0]) - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_peer_panics() {
        let cfg = small_cfg(1);
        let _ = estimate_choice_distribution(&cfg, 500);
    }
}
