//! Analytic mate-distribution solvers for global-ranking b-matching on
//! Erdős–Rényi acceptance graphs (Section 5 of *Stratification in P2P
//! Networks*).
//!
//! Four complementary routes to the mate distribution `D(i, j)`:
//!
//! | module | method | role |
//! |--------|--------|------|
//! | [`one_matching`] | Algorithm 2 (independence assumption) | fast `O(n²)` time / `O(n)` memory recurrence for 1-matching |
//! | [`b_matching`] | Algorithm 3 | per-choice distributions `D_c(i, j)` for `b₀`-matching |
//! | [`exact`] | exhaustive graph enumeration (tiny `n`) | gold standard; quantifies the independence error (Figure 7) |
//! | [`monte_carlo`] | parallel simulation of Algorithm 1 over graph ensembles | empirical validation at real scale (Figure 9) |
//!
//! plus [`fluid`], the `n → ∞` fluid limit `M_{0,d}(β) = d·e^{−βd}`
//! (Conjecture 1) showing stratification is governed solely by the mean
//! acceptable-peer count `d` — the paper's scalability argument.
//!
//! # Example: the regimes of Figure 8
//!
//! ```
//! use strat_analytic::one_matching;
//!
//! let n = 1000;
//! let sol = one_matching::solve(n, 0.025, &[40, 500, 960]);
//!
//! // Top peers mate just below themselves; mid-rank peers see a symmetric
//! // distribution centred on their own rank; bottom peers risk staying
//! // unmatched.
//! assert!(sol.unmatched_probability(40) < 1e-6);
//! assert!(sol.unmatched_probability(960) > 0.005);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// Index-coupled loops are the domain idiom here: the recurrence solvers iterate coupled (i, j, c) index families over triangular domains; iterator rewrites obscure the paper's algorithm statements.
#![allow(clippy::needless_range_loop)]

pub mod b_matching;
pub mod exact;
pub mod fluid;
pub mod monte_carlo;
pub mod one_matching;
