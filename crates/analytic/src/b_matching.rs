//! Algorithm 3: the independent `b₀`-matching per-choice mate distribution
//! (§5.4).
//!
//! For `b₀`-matching the quantity of interest is `D_c(i, j)`: the
//! probability that the `c`-th best mate (*choice* `c`, `1 ≤ c ≤ b₀`) of
//! peer `i` is peer `j`. Under the independence assumption (Assumption 2)
//! the joint quantity `D^{c_j}_{c_i}(i, j)` — choice `c_i` of `i` is `j`
//! *and* choice `c_j` of `j` is `i` — factorizes as
//!
//! ```text
//! D^{c_j}_{c_i}(i,j) = p · [Σ_{k<j} D_{c_i−1}(i,k) − D_{c_i}(i,k)]
//!                        · [Σ_{k<i} D_{c_j−1}(j,k) − D_{c_j}(j,k)]   (Eq. 4)
//! ```
//!
//! with the convention that the `c = 0` prefix sum is identically 1. As for
//! [Algorithm 2](crate::one_matching), we stream the computation with
//! `O(b₀·n)` running prefix sums instead of the paper's
//! `O(b₀²·n²)` arrays, keeping `n = 5000` (Figure 9) cheap.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Solution of the independent `b₀`-matching recurrence.
///
/// # Examples
///
/// ```
/// use strat_analytic::b_matching::solve;
///
/// // 2-matching on 400 peers with ~20 acceptable peers each.
/// let sol = solve(400, 0.05, 2, &[200]);
/// let first = sol.choice_row(200, 1).unwrap();
/// let second = sol.choice_row(200, 2).unwrap();
/// // First choices are better-ranked than second choices on average.
/// let mean = |row: &[f64]| {
///     let m: f64 = row.iter().sum();
///     row.iter().enumerate().map(|(j, d)| j as f64 * d).sum::<f64>() / m
/// };
/// assert!(mean(first) < mean(second));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BMatchingDistribution {
    n: usize,
    p: f64,
    b0: u32,
    /// `rows[i][c-1][j] = D_c(i, j)` for requested peers.
    rows: BTreeMap<usize, Vec<Vec<f64>>>,
    /// `mass[c-1][i] = Σ_j D_c(i, j)`: probability peer `i` has a `c`-th mate.
    mass: Vec<Vec<f64>>,
}

impl BMatchingDistribution {
    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of slots per peer.
    #[must_use]
    pub fn b0(&self) -> u32 {
        self.b0
    }

    /// Distribution `D_c(i, ·)` of the `c`-th choice of peer `i`
    /// (`1 ≤ c ≤ b₀`), if `i` was requested at solve time.
    #[must_use]
    pub fn choice_row(&self, i: usize, c: u32) -> Option<&[f64]> {
        if c == 0 || c > self.b0 {
            return None;
        }
        self.rows.get(&i).map(|r| r[(c - 1) as usize].as_slice())
    }

    /// Probability that peer `i` has at least `c` mates.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `c ∉ 1..=b₀`.
    #[must_use]
    pub fn choice_mass(&self, i: usize, c: u32) -> f64 {
        assert!(
            (1..=self.b0).contains(&c),
            "choice {c} out of 1..={}",
            self.b0
        );
        self.mass[(c - 1) as usize][i]
    }

    /// Expected number of mates of peer `i` (`Σ_c choice_mass`).
    #[must_use]
    pub fn expected_degree(&self, i: usize) -> f64 {
        (1..=self.b0).map(|c| self.choice_mass(i, c)).sum()
    }
}

/// Solves the independent `b₀`-matching recurrence, retaining per-choice
/// rows for `peers`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`, `b0 == 0`, or a requested peer is `>= n`.
#[must_use]
pub fn solve(n: usize, p: f64, b0: u32, peers: &[usize]) -> BMatchingDistribution {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    assert!(b0 >= 1, "b0 must be at least 1");
    let b = b0 as usize;
    let mut rows: BTreeMap<usize, Vec<Vec<f64>>> = peers
        .iter()
        .map(|&i| {
            assert!(i < n, "requested peer {i} out of range for n = {n}");
            (i, vec![vec![0.0; n]; b])
        })
        .collect();
    let mut mass = vec![vec![0.0f64; n]; b];
    // colcum[c][j] = Σ_{k<i} D_{c+1}(j, k) while processing row i.
    let mut colcum = vec![vec![0.0f64; n]; b];
    // Scratch buffers reused across pairs.
    let mut rowcum = vec![0.0f64; b];
    let mut d_i = vec![0.0f64; b]; // D_{c}(i, j) for the current pair
    let mut d_j = vec![0.0f64; b]; // D_{c}(j, i) for the current pair
    for i in 0..n {
        // Initialize Σ_{k<i} D_c(i, k) from the symmetric column sums.
        for c in 0..b {
            rowcum[c] = colcum[c][i];
        }
        for j in (i + 1)..n {
            // factor_i[c] = P(choice c+1 of i is free at level j);
            // factor_j[c] = P(choice c+1 of j is free at level i).
            // The whole b×b block is evaluated from the prefix sums as they
            // stood BEFORE this pair, then applied at once.
            d_i.fill(0.0);
            d_j.fill(0.0);
            for ci in 0..b {
                let fi = (if ci == 0 { 1.0 } else { rowcum[ci - 1] }) - rowcum[ci];
                if fi <= 0.0 {
                    continue;
                }
                for cj in 0..b {
                    let fj = (if cj == 0 { 1.0 } else { colcum[cj - 1][j] }) - colcum[cj][j];
                    if fj <= 0.0 {
                        continue;
                    }
                    let v = p * fi * fj;
                    d_i[ci] += v; // D_{ci+1}(i, j), summed over j's choice
                    d_j[cj] += v; // D_{cj+1}(j, i), summed over i's choice
                }
            }
            for c in 0..b {
                rowcum[c] += d_i[c];
                colcum[c][j] += d_j[c];
            }
            if let Some(r) = rows.get_mut(&i) {
                for c in 0..b {
                    r[c][j] = d_i[c];
                }
            }
            if let Some(r) = rows.get_mut(&j) {
                for c in 0..b {
                    r[c][i] = d_j[c];
                }
            }
        }
        for c in 0..b {
            mass[c][i] = rowcum[c];
        }
    }
    BMatchingDistribution {
        n,
        p,
        b0,
        rows,
        mass,
    }
}

/// Per-peer expectations over the mate distribution, computed in one
/// streaming pass without materializing any row.
///
/// This powers the §6 efficiency model (Figure 11): with `weights[j]` = the
/// per-slot upload bandwidth of peer `j`, `weighted[i]` is peer `i`'s
/// expected download rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeExpectations {
    /// `weighted[i] = Σ_c Σ_j D_c(i, j) · weights[j]`.
    pub weighted: Vec<f64>,
    /// `expected_degree[i] = Σ_c Σ_j D_c(i, j)`: expected number of mates.
    pub expected_degree: Vec<f64>,
    /// `choice_mass[c-1][i] = Σ_j D_c(i, j)`.
    pub choice_mass: Vec<Vec<f64>>,
}

/// Runs the Algorithm 3 recurrence accumulating, for **every** peer, the
/// expectation `Σ_c Σ_j D_c(i, j)·weights[j]` and the per-choice masses —
/// `O(b₀·n)` memory even though all `n` rows are covered.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`, `b0 == 0`, or `weights.len() != n`.
#[must_use]
pub fn solve_expectations(n: usize, p: f64, b0: u32, weights: &[f64]) -> ExchangeExpectations {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    assert!(b0 >= 1, "b0 must be at least 1");
    assert_eq!(weights.len(), n, "weights must cover all peers");
    let b = b0 as usize;
    let mut weighted = vec![0.0f64; n];
    let mut colcum = vec![vec![0.0f64; n]; b];
    let mut rowcum = vec![0.0f64; b];
    let mut d_i = vec![0.0f64; b];
    let mut d_j = vec![0.0f64; b];
    let mut mass = vec![vec![0.0f64; n]; b];
    for i in 0..n {
        for c in 0..b {
            rowcum[c] = colcum[c][i];
        }
        for j in (i + 1)..n {
            d_i.fill(0.0);
            d_j.fill(0.0);
            for ci in 0..b {
                let fi = (if ci == 0 { 1.0 } else { rowcum[ci - 1] }) - rowcum[ci];
                if fi <= 0.0 {
                    continue;
                }
                for cj in 0..b {
                    let fj = (if cj == 0 { 1.0 } else { colcum[cj - 1][j] }) - colcum[cj][j];
                    if fj <= 0.0 {
                        continue;
                    }
                    let v = p * fi * fj;
                    d_i[ci] += v;
                    d_j[cj] += v;
                }
            }
            let (mut pair_i, mut pair_j) = (0.0, 0.0);
            for c in 0..b {
                rowcum[c] += d_i[c];
                colcum[c][j] += d_j[c];
                pair_i += d_i[c];
                pair_j += d_j[c];
            }
            weighted[i] += pair_i * weights[j];
            weighted[j] += pair_j * weights[i];
        }
        for c in 0..b {
            mass[c][i] = rowcum[c];
        }
    }
    let expected_degree = (0..n).map(|i| (0..b).map(|c| mass[c][i]).sum()).collect();
    ExchangeExpectations {
        weighted,
        expected_degree,
        choice_mass: mass,
    }
}

#[cfg(test)]
mod tests {
    use crate::one_matching;

    use super::*;

    #[test]
    fn b1_reduces_to_algorithm2() {
        let n = 80;
        let p = 0.07;
        let peers: Vec<usize> = (0..n).collect();
        let one = one_matching::solve(n, p, &peers);
        let b = solve(n, p, 1, &peers);
        for i in 0..n {
            let r1 = one.row(i).unwrap();
            let rb = b.choice_row(i, 1).unwrap();
            for j in 0..n {
                assert!(
                    (r1[j] - rb[j]).abs() < 1e-12,
                    "D({i},{j}): {} vs {}",
                    r1[j],
                    rb[j]
                );
            }
            assert!((one.match_probability(i) - b.choice_mass(i, 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn choice_rows_are_subprobabilities_and_ordered() {
        let sol = solve(300, 0.05, 3, &[150]);
        let mut prev_mass = f64::INFINITY;
        for c in 1..=3u32 {
            let row = sol.choice_row(150, c).unwrap();
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let mass: f64 = row.iter().sum();
            assert!((mass - sol.choice_mass(150, c)).abs() < 1e-9);
            assert!(
                mass <= prev_mass + 1e-12,
                "choice {c} mass {mass} above previous"
            );
            prev_mass = mass;
        }
        assert!(sol.expected_degree(150) <= 3.0 + 1e-9);
    }

    #[test]
    fn first_choice_outranks_second_on_average() {
        let sol = solve(500, 0.04, 2, &[250]);
        let mean_rank = |row: &[f64]| {
            let m: f64 = row.iter().sum();
            row.iter()
                .enumerate()
                .map(|(j, d)| j as f64 * d)
                .sum::<f64>()
                / m
        };
        let m1 = mean_rank(sol.choice_row(250, 1).unwrap());
        let m2 = mean_rank(sol.choice_row(250, 2).unwrap());
        assert!(
            m1 < m2,
            "first-choice mean rank {m1} not better than second {m2}"
        );
    }

    #[test]
    fn best_pair_first_choice_is_p() {
        // Choice 1 of peer 0 is peer 1 iff the edge (0,1) exists.
        let sol = solve(20, 0.3, 2, &[0]);
        assert!((sol.choice_row(0, 1).unwrap()[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn n_freeness_truncation() {
        let small = solve(80, 0.06, 2, &[30]);
        let large = solve(200, 0.06, 2, &[30]);
        for c in 1..=2u32 {
            let (rs, rl) = (
                small.choice_row(30, c).unwrap(),
                large.choice_row(30, c).unwrap(),
            );
            for j in 0..80 {
                assert!((rs[j] - rl[j]).abs() < 1e-12, "c={c} j={j}");
            }
        }
    }

    #[test]
    fn diagonal_is_zero_and_out_of_range_choice_is_none() {
        let sol = solve(30, 0.2, 2, &[10]);
        assert_eq!(sol.choice_row(10, 1).unwrap()[10], 0.0);
        assert!(sol.choice_row(10, 0).is_none());
        assert!(sol.choice_row(10, 3).is_none());
        assert!(sol.choice_row(11, 1).is_none()); // not requested
    }

    #[test]
    fn complete_graph_b2_forms_triangles() {
        // p = 1: stable 2-matching on a complete graph is consecutive
        // 3-cliques; peer 0's choices are peers 1 and 2 with certainty.
        let sol = solve(12, 1.0, 2, &[0, 1, 4]);
        assert!((sol.choice_row(0, 1).unwrap()[1] - 1.0).abs() < 1e-9);
        assert!((sol.choice_row(0, 2).unwrap()[2] - 1.0).abs() < 1e-9);
        // Peer 1's first choice is peer 0.
        assert!((sol.choice_row(1, 1).unwrap()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "b0 must be at least 1")]
    fn zero_b0_panics() {
        let _ = solve(5, 0.5, 0, &[]);
    }

    #[test]
    fn expectations_match_explicit_rows() {
        let n = 120;
        let p = 0.06;
        let b0 = 3;
        let weights: Vec<f64> = (0..n).map(|j| 1000.0 / (j as f64 + 1.0)).collect();
        let exp = solve_expectations(n, p, b0, &weights);
        let peers: Vec<usize> = (0..n).collect();
        let rows = solve(n, p, b0, &peers);
        for i in (0..n).step_by(17) {
            let explicit: f64 = (1..=b0)
                .map(|c| {
                    rows.choice_row(i, c)
                        .unwrap()
                        .iter()
                        .zip(&weights)
                        .map(|(d, w)| d * w)
                        .sum::<f64>()
                })
                .sum();
            assert!(
                (exp.weighted[i] - explicit).abs() < 1e-9,
                "peer {i}: {} vs {explicit}",
                exp.weighted[i]
            );
            assert!((exp.expected_degree[i] - rows.expected_degree(i)).abs() < 1e-9);
            for c in 1..=b0 {
                assert!(
                    (exp.choice_mass[(c - 1) as usize][i] - rows.choice_mass(i, c)).abs() < 1e-9
                );
            }
        }
    }

    #[test]
    fn expectations_with_unit_weights_equal_degree() {
        let exp = solve_expectations(60, 0.1, 2, &vec![1.0; 60]);
        for i in 0..60 {
            assert!((exp.weighted[i] - exp.expected_degree[i]).abs() < 1e-12);
        }
    }
}
