//! Fluid limit of the mate distribution (§5.2, Conjecture 1).
//!
//! With `p_n = d/n` and `n → ∞`, the mate distribution of peer
//! `i_n = 1 + ⌊nα⌋` rescaled by `n` converges to an absolutely continuous
//! law `M_{α,d}`. The paper derives the `α = 0` case (the best peer):
//!
//! ```text
//! M_{0,d}(dβ) = d · e^{−βd} dβ
//! ```
//!
//! i.e. the best peer's mate sits an *exponential* rank fraction below it
//! with rate `d` — the crucial observation that makes stratification
//! **scalable**: the distribution shape depends only on the mean number of
//! acceptable peers `d`, not on the system size `n`.

/// Fluid-limit density `M_{0,d}(β) = d·e^{−βd}` of the best peer's mate at
/// scaled rank `β = j/n`.
///
/// # Examples
///
/// ```
/// let f = strat_analytic::fluid::density_best(20.0, 0.0);
/// assert_eq!(f, 20.0); // density at the top equals d
/// ```
#[must_use]
pub fn density_best(d: f64, beta: f64) -> f64 {
    if beta < 0.0 {
        return 0.0;
    }
    d * (-beta * d).exp()
}

/// Fluid-limit CDF `1 − e^{−βd}` of the best peer's mate.
#[must_use]
pub fn cdf_best(d: f64, beta: f64) -> f64 {
    if beta < 0.0 {
        return 0.0;
    }
    1.0 - (-beta * d).exp()
}

/// Empirical check of Conjecture 1 at `α = 0`: solves Algorithm 2 with
/// `p = d/n` and returns the maximum absolute error between `n·D(1, j)` and
/// `d·e^{−(j/n)·d}` over scaled ranks `β = j/n ≤ beta_max`.
///
/// # Panics
///
/// Panics if parameters are non-positive or `d >= n`.
#[must_use]
pub fn best_peer_fluid_error(n: usize, d: f64, beta_max: f64) -> f64 {
    assert!(n > 1 && d > 0.0 && beta_max > 0.0, "invalid parameters");
    assert!(d < n as f64, "d must be below n");
    let p = d / n as f64;
    let sol = crate::one_matching::solve(n, p, &[0]);
    let row = sol.row(0).expect("row 0 requested");
    let j_max = ((beta_max * n as f64) as usize).min(n - 1);
    let mut worst = 0.0f64;
    for j in 1..=j_max {
        let beta = j as f64 / n as f64;
        let scaled = n as f64 * row[j];
        let err = (scaled - density_best(d, beta)).abs();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let d = 10.0;
        let steps = 200_000;
        let h = 5.0 / steps as f64; // integrate to β = 5 (mass beyond is e^{-50})
        let integral: f64 = (0..steps)
            .map(|k| density_best(d, (k as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn cdf_is_the_integral_of_density() {
        let d = 7.0;
        for beta in [0.01, 0.1, 0.5, 1.0] {
            let steps = 20_000;
            let h = beta / steps as f64;
            let integral: f64 = (0..steps)
                .map(|k| density_best(d, (k as f64 + 0.5) * h) * h)
                .sum();
            assert!((integral - cdf_best(d, beta)).abs() < 1e-6, "beta={beta}");
        }
    }

    #[test]
    fn negative_beta_has_no_mass() {
        assert_eq!(density_best(5.0, -0.1), 0.0);
        assert_eq!(cdf_best(5.0, -0.1), 0.0);
    }

    #[test]
    fn conjecture1_error_shrinks_with_n() {
        // n·D(1, βn) → d·e^{−βd}: the sup-error over β ≤ 0.5 decreases in n
        // and is already small at n = 4000.
        let d = 10.0;
        let e_small = best_peer_fluid_error(500, d, 0.5);
        let e_large = best_peer_fluid_error(4000, d, 0.5);
        assert!(e_large < e_small, "{e_large} !< {e_small}");
        assert!(e_large < 0.2 * d, "error {e_large} too large vs d = {d}");
    }

    #[test]
    fn exact_prelimit_formula() {
        // Pre-limit: D(1, j) = p(1-p)^{j-2} in paper labels; the scaled
        // value at small β must be close to d.
        let n = 2000;
        let d = 20.0;
        let sol = crate::one_matching::solve(n, d / n as f64, &[0]);
        let scaled = n as f64 * sol.row(0).unwrap()[1];
        assert!((scaled - d).abs() < 0.5, "scaled {scaled}");
    }
}
