//! Fluid limit of the mate distribution (§5.2, Conjecture 1).
//!
//! With `p_n = d/n` and `n → ∞`, the mate distribution of peer
//! `i_n = 1 + ⌊nα⌋` rescaled by `n` converges to an absolutely continuous
//! law `M_{α,d}`. The paper derives the `α = 0` case (the best peer):
//!
//! ```text
//! M_{0,d}(dβ) = d · e^{−βd} dβ
//! ```
//!
//! i.e. the best peer's mate sits an *exponential* rank fraction below it
//! with rate `d` — the crucial observation that makes stratification
//! **scalable**: the distribution shape depends only on the mean number of
//! acceptable peers `d`, not on the system size `n`.

/// Fluid-limit density `M_{0,d}(β) = d·e^{−βd}` of the best peer's mate at
/// scaled rank `β = j/n`.
///
/// # Examples
///
/// ```
/// let f = strat_analytic::fluid::density_best(20.0, 0.0);
/// assert_eq!(f, 20.0); // density at the top equals d
/// ```
#[must_use]
pub fn density_best(d: f64, beta: f64) -> f64 {
    if beta < 0.0 {
        return 0.0;
    }
    d * (-beta * d).exp()
}

/// Fluid-limit CDF `1 − e^{−βd}` of the best peer's mate.
#[must_use]
pub fn cdf_best(d: f64, beta: f64) -> f64 {
    if beta < 0.0 {
        return 0.0;
    }
    1.0 - (-beta * d).exp()
}

/// Empirical check of Conjecture 1 at `α = 0`: solves Algorithm 2 with
/// `p = d/n` and returns the maximum absolute error between `n·D(1, j)` and
/// `d·e^{−(j/n)·d}` over scaled ranks `β = j/n ≤ beta_max`.
///
/// # Panics
///
/// Panics if parameters are non-positive or `d >= n`.
#[must_use]
pub fn best_peer_fluid_error(n: usize, d: f64, beta_max: f64) -> f64 {
    assert!(n > 1 && d > 0.0 && beta_max > 0.0, "invalid parameters");
    assert!(d < n as f64, "d must be below n");
    let p = d / n as f64;
    let sol = crate::one_matching::solve(n, p, &[0]);
    let row = sol.row(0).expect("row 0 requested");
    let j_max = ((beta_max * n as f64) as usize).min(n - 1);
    let mut worst = 0.0f64;
    for j in 1..=j_max {
        let beta = j as f64 / n as f64;
        let scaled = n as f64 * row[j];
        let err = (scaled - density_best(d, beta)).abs();
        worst = worst.max(err);
    }
    worst
}

/// Parameters of the BitTorrent population fluid model (Qiu–Srikant form,
/// the deterministic limit Xu's *Performance Modeling of BitTorrent P2P
/// File Sharing Networks* (arXiv 1311.1195) builds on), in **per-round**
/// units so the swarm session maps onto it directly:
///
/// * `lambda` — leecher arrivals per round;
/// * `mu` — per-peer upload service rate in *files per round*
///   (`upload_kbit_per_round / file_kbit`);
/// * `gamma` — per-round departure rate of **promoted** seeds (leechers
///   that completed and linger);
/// * `theta` — per-round mid-download abort rate;
/// * `eta` — effectiveness of leecher upload capacity (≈ 1 under
///   rarest-first with enough pieces — the Qiu–Srikant argument);
/// * `s0` — permanent original seeds (the publisher squad that never
///   leaves; its capacity is a constant term).
///
/// With leecher population `x` and promoted-seed population `y`, the
/// upload-constrained dynamics are
///
/// ```text
/// x' = λ − θx − φ,   y' = φ − γy,   φ = μ(ηx + y + s0)
/// ```
///
/// `φ` being the completion flux (total useful upload capacity, in files
/// per round). Downloads are not separately capped — the swarm engine has
/// no download limit — except for the trajectory integrator's
/// regularization `φ ≤ x` (a leecher cannot complete faster than one file
/// per round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtFluidParams {
    /// Arrivals per round.
    pub lambda: f64,
    /// Per-peer service rate, files per round.
    pub mu: f64,
    /// Promoted-seed departure rate per round.
    pub gamma: f64,
    /// Mid-download abort rate per round.
    pub theta: f64,
    /// Leecher upload effectiveness.
    pub eta: f64,
    /// Permanent original seeds.
    pub s0: f64,
}

/// A point of the fluid trajectory: leecher and promoted-seed masses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtFluidState {
    /// Leecher population `x`.
    pub leechers: f64,
    /// Promoted-seed population `y` (original seeds excluded).
    pub seeds: f64,
}

impl BtFluidParams {
    fn validate(&self) {
        assert!(
            self.lambda >= 0.0
                && self.mu > 0.0
                && self.gamma > 0.0
                && self.theta >= 0.0
                && self.eta > 0.0
                && self.s0 >= 0.0,
            "fluid parameters out of range: {self:?}"
        );
    }

    /// The steady state of the upload-constrained dynamics:
    ///
    /// ```text
    /// x̄ = (λ − μ·s0·γ/(γ−μ)) / (θ + μ·η·γ/(γ−μ)),   ȳ = (λ − θ·x̄)/γ
    /// ```
    ///
    /// (for `θ = 0` this is the classic `x̄ = (λ/μ − λ/γ − s0)/η`,
    /// `ȳ = λ/γ`). Requires `γ > μ` — otherwise promoted seeds accumulate
    /// capacity faster than they leave and the swarm is not
    /// upload-constrained (no interior steady state exists in this
    /// branch).
    ///
    /// # Panics
    ///
    /// Panics when `γ ≤ μ`, on out-of-range parameters, or when the seed
    /// squad alone oversupplies the arrival flux (`x̄ ≤ 0`).
    #[must_use]
    pub fn steady_state(&self) -> BtFluidState {
        self.validate();
        assert!(
            self.gamma > self.mu,
            "steady state requires gamma > mu (got gamma = {}, mu = {})",
            self.gamma,
            self.mu
        );
        let boost = self.gamma / (self.gamma - self.mu);
        let x =
            (self.lambda - self.mu * self.s0 * boost) / (self.theta + self.mu * self.eta * boost);
        assert!(
            x > 0.0,
            "no interior steady state: seed capacity oversupplies arrivals ({self:?})"
        );
        let y = (self.lambda - self.theta * x) / self.gamma;
        BtFluidState {
            leechers: x,
            seeds: y,
        }
    }

    /// Mean rounds a peer spends downloading in steady state (Little's
    /// law over the leecher pool, `x̄ / λ`).
    ///
    /// # Panics
    ///
    /// As [`BtFluidParams::steady_state`], plus `λ > 0` is required.
    #[must_use]
    pub fn mean_download_rounds(&self) -> f64 {
        assert!(
            self.lambda > 0.0,
            "Little's law needs a positive arrival rate"
        );
        self.steady_state().leechers / self.lambda
    }

    /// Integrates the fluid ODE with classic RK4 from `(x0, y0)`,
    /// sampling every `dt` rounds until `t_end`; returns
    /// `(t, x, y)` triples including both endpoints. The completion flux
    /// is clamped to `min(μ(ηx + y + s0), x)` and populations to ≥ 0, so
    /// the integrator stays meaningful outside the upload-constrained
    /// interior.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters or a non-positive `dt`.
    #[must_use]
    pub fn trajectory(&self, x0: f64, y0: f64, t_end: f64, dt: f64) -> Vec<(f64, f64, f64)> {
        self.validate();
        assert!(dt > 0.0 && t_end >= 0.0, "need dt > 0 and t_end >= 0");
        let deriv = |x: f64, y: f64| -> (f64, f64) {
            let flux = (self.mu * (self.eta * x + y + self.s0)).min(x.max(0.0));
            (
                self.lambda - self.theta * x.max(0.0) - flux,
                flux - self.gamma * y.max(0.0),
            )
        };
        let steps = (t_end / dt).ceil() as usize;
        let mut out = Vec::with_capacity(steps + 1);
        let (mut x, mut y) = (x0.max(0.0), y0.max(0.0));
        out.push((0.0, x, y));
        for step in 1..=steps {
            let (k1x, k1y) = deriv(x, y);
            let (k2x, k2y) = deriv(x + 0.5 * dt * k1x, y + 0.5 * dt * k1y);
            let (k3x, k3y) = deriv(x + 0.5 * dt * k2x, y + 0.5 * dt * k2y);
            let (k4x, k4y) = deriv(x + dt * k3x, y + dt * k3y);
            x = (x + dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x)).max(0.0);
            y = (y + dt / 6.0 * (k1y + 2.0 * k2y + 2.0 * k3y + k4y)).max(0.0);
            out.push((step as f64 * dt, x, y));
        }
        out
    }
}

/// Parameters of the **multi-class** BitTorrent fluid model (Xu's
/// heterogeneous extension of the Qiu–Srikant dynamics, arXiv
/// 1311.1195): `k` bandwidth classes with arrival rates `lambda[i]` and
/// per-peer service rates `mu[i]` (files per round), a common promoted-
/// seed departure rate `gamma`, leecher upload effectiveness `eta`, and
/// a permanent publisher squad of `s0` seeds serving at `mu_seed`.
///
/// The capacity split encodes the stratification the paper predicts:
/// leecher-to-leecher upload is **reciprocated within the class** (under
/// TFT a peer downloads from other leechers at the rate it uploads,
/// `η·μ_i`), while seed capacity
///
/// ```text
/// S = μ_seed·s0 + Σ_i μ_i·ȳ_i,   ȳ_i = λ_i/γ
/// ```
///
/// is altruistic and shared equally over all `X = Σ_i x̄_i` leechers. The
/// class-`i` balance `x̄_i · (η·μ_i + S/X) = λ_i` then closes into one
/// scalar fixed point
///
/// ```text
/// Σ_i λ_i / (η·μ_i·X + S) = 1
/// ```
///
/// whose left side is strictly decreasing in `X` — solved here by
/// bisection. For `k = 1` (and `mu_seed = mu`) the solution collapses to
/// the classic `θ = 0` closed form `x̄ = (λ/μ − λ/γ − s0)/η` of
/// [`BtFluidParams::steady_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct BtMultiClassParams {
    /// Arrivals per round, one entry per class.
    pub lambda: Vec<f64>,
    /// Per-peer service rate in files per round, one entry per class.
    pub mu: Vec<f64>,
    /// Promoted-seed departure rate per round (common to all classes).
    pub gamma: f64,
    /// Leecher upload effectiveness.
    pub eta: f64,
    /// Permanent original seeds.
    pub s0: f64,
    /// Service rate of the permanent seeds, files per round.
    pub mu_seed: f64,
}

/// Steady state of the multi-class fluid model.
#[derive(Debug, Clone, PartialEq)]
pub struct BtMultiClassState {
    /// Leecher population per class (`x̄_i`).
    pub leechers: Vec<f64>,
    /// Promoted-seed population per class (`ȳ_i = λ_i/γ`).
    pub seeds: Vec<f64>,
}

impl BtMultiClassParams {
    fn validate(&self) {
        assert!(
            !self.lambda.is_empty() && self.lambda.len() == self.mu.len(),
            "need one (lambda, mu) pair per class"
        );
        assert!(
            self.lambda.iter().all(|&l| l.is_finite() && l > 0.0)
                && self.mu.iter().all(|&m| m.is_finite() && m > 0.0)
                && self.gamma > 0.0
                && self.eta > 0.0
                && self.s0 >= 0.0
                && self.mu_seed >= 0.0,
            "multi-class fluid parameters out of range: {self:?}"
        );
    }

    /// Total altruistic seed capacity `S` in files per round.
    fn seed_capacity(&self) -> f64 {
        let promoted: f64 = self
            .lambda
            .iter()
            .zip(&self.mu)
            .map(|(&l, &m)| m * l / self.gamma)
            .sum();
        self.mu_seed * self.s0 + promoted
    }

    /// The steady state: per-class leecher masses `x̄_i` from the scalar
    /// fixed point above, promoted seeds `ȳ_i = λ_i/γ`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters or when the seed capacity alone
    /// oversupplies the total arrival flux (`S ≥ Σλ_i` leaves no
    /// interior steady state, mirroring the single-class panic).
    #[must_use]
    pub fn steady_state(&self) -> BtMultiClassState {
        self.validate();
        let s = self.seed_capacity();
        let total_lambda: f64 = self.lambda.iter().sum();
        assert!(
            s < total_lambda,
            "no interior steady state: seed capacity {s} oversupplies arrivals {total_lambda}"
        );
        // f(X) = Σ λ_i/(η μ_i X + S) − 1 is strictly decreasing with
        // f(0) = Σλ/S − 1 > 0; double an upper bracket until f < 0,
        // then bisect.
        let f = |x: f64| -> f64 {
            self.lambda
                .iter()
                .zip(&self.mu)
                .map(|(&l, &m)| l / (self.eta * m * x + s))
                .sum::<f64>()
                - 1.0
        };
        let mut hi = 1.0;
        while f(hi) > 0.0 {
            hi *= 2.0;
            assert!(hi.is_finite(), "bisection bracket diverged: {self:?}");
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let x_total = 0.5 * (lo + hi);
        let leechers = self
            .lambda
            .iter()
            .zip(&self.mu)
            .map(|(&l, &m)| l / (self.eta * m + s / x_total))
            .collect();
        let seeds = self.lambda.iter().map(|&l| l / self.gamma).collect();
        BtMultiClassState { leechers, seeds }
    }

    /// Mean rounds a class-`i` peer spends downloading in steady state
    /// (Little's law per class, `x̄_i / λ_i`) — the per-class completion
    /// time oracle the `btevent` experiment sweeps against.
    ///
    /// # Panics
    ///
    /// As [`BtMultiClassParams::steady_state`].
    #[must_use]
    pub fn mean_download_rounds(&self) -> Vec<f64> {
        let state = self.steady_state();
        state
            .leechers
            .iter()
            .zip(&self.lambda)
            .map(|(&x, &l)| x / l)
            .collect()
    }

    /// The model with every **class** service rate scaled by
    /// `share ∈ (0, 1]` — the capacity-share-adjusted oracle for
    /// multi-swarm universes: a member splitting its upload across `k`
    /// concurrent torrents serves each at `share ≈ 1/k` of its rate, in
    /// the leecher phase *and* the promoted-seed phase, so the
    /// per-torrent dynamics follow the same fixed point with effective
    /// rates `share·μ_i`. The permanent publishers (`s0`, `mu_seed`)
    /// stay single-torrent in the universe and keep their full rate, and
    /// arrival/departure rates are membership counts, not bandwidth — the
    /// `btmulti` experiment threads its own effective per-torrent `λ`
    /// separately.
    ///
    /// # Panics
    ///
    /// Panics when `share` is outside `(0, 1]`.
    #[must_use]
    pub fn with_capacity_share(&self, share: f64) -> Self {
        assert!(
            share.is_finite() && share > 0.0 && share <= 1.0,
            "capacity share must lie in (0, 1], got {share}"
        );
        Self {
            mu: self.mu.iter().map(|m| m * share).collect(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let d = 10.0;
        let steps = 200_000;
        let h = 5.0 / steps as f64; // integrate to β = 5 (mass beyond is e^{-50})
        let integral: f64 = (0..steps)
            .map(|k| density_best(d, (k as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn cdf_is_the_integral_of_density() {
        let d = 7.0;
        for beta in [0.01, 0.1, 0.5, 1.0] {
            let steps = 20_000;
            let h = beta / steps as f64;
            let integral: f64 = (0..steps)
                .map(|k| density_best(d, (k as f64 + 0.5) * h) * h)
                .sum();
            assert!((integral - cdf_best(d, beta)).abs() < 1e-6, "beta={beta}");
        }
    }

    #[test]
    fn negative_beta_has_no_mass() {
        assert_eq!(density_best(5.0, -0.1), 0.0);
        assert_eq!(cdf_best(5.0, -0.1), 0.0);
    }

    #[test]
    fn conjecture1_error_shrinks_with_n() {
        // n·D(1, βn) → d·e^{−βd}: the sup-error over β ≤ 0.5 decreases in n
        // and is already small at n = 4000.
        let d = 10.0;
        let e_small = best_peer_fluid_error(500, d, 0.5);
        let e_large = best_peer_fluid_error(4000, d, 0.5);
        assert!(e_large < e_small, "{e_large} !< {e_small}");
        assert!(e_large < 0.2 * d, "error {e_large} too large vs d = {d}");
    }

    fn bt_params() -> BtFluidParams {
        BtFluidParams {
            lambda: 4.0,
            mu: 1.0 / 16.0,
            gamma: 0.25,
            theta: 0.0,
            eta: 1.0,
            s0: 2.0,
        }
    }

    #[test]
    fn bt_steady_state_satisfies_the_balance_equations() {
        let p = bt_params();
        let s = p.steady_state();
        // x' = 0 and y' = 0 at the fixed point.
        let flux = p.mu * (p.eta * s.leechers + s.seeds + p.s0);
        assert!((p.lambda - p.theta * s.leechers - flux).abs() < 1e-10);
        assert!((flux - p.gamma * s.seeds).abs() < 1e-10);
        // The theta = 0 closed form.
        let expect = (p.lambda / p.mu - p.lambda / p.gamma - p.s0) / p.eta;
        assert!((s.leechers - expect).abs() < 1e-10);
        assert!((s.seeds - p.lambda / p.gamma).abs() < 1e-10);
        // Little's law.
        assert!((p.mean_download_rounds() - s.leechers / p.lambda).abs() < 1e-12);
    }

    #[test]
    fn bt_steady_state_with_aborts_balances() {
        let p = BtFluidParams {
            theta: 0.02,
            ..bt_params()
        };
        let s = p.steady_state();
        let flux = p.mu * (p.eta * s.leechers + s.seeds + p.s0);
        assert!((p.lambda - p.theta * s.leechers - flux).abs() < 1e-10);
        assert!((flux - p.gamma * s.seeds).abs() < 1e-10);
        // Aborts shrink the leecher pool relative to the no-abort case.
        assert!(s.leechers < bt_params().steady_state().leechers);
    }

    #[test]
    fn bt_trajectory_converges_to_the_steady_state() {
        let p = bt_params();
        let s = p.steady_state();
        // Start well away from the fixed point.
        let path = p.trajectory(2.0 * s.leechers, 0.1, 600.0, 0.25);
        let (_, x_end, y_end) = *path.last().expect("non-empty");
        assert!(
            (x_end - s.leechers).abs() < 0.01 * s.leechers,
            "x_end {x_end} vs {}",
            s.leechers
        );
        assert!(
            (y_end - s.seeds).abs() < 0.01 * s.seeds.max(1.0),
            "y_end {y_end} vs {}",
            s.seeds
        );
        // Populations never go negative along the way.
        assert!(path.iter().all(|&(_, x, y)| x >= 0.0 && y >= 0.0));
    }

    #[test]
    #[should_panic(expected = "gamma > mu")]
    fn bt_seed_accumulation_regime_rejected() {
        let p = BtFluidParams {
            gamma: 0.05,
            mu: 0.1,
            ..bt_params()
        };
        let _ = p.steady_state();
    }

    #[test]
    fn multiclass_collapses_to_single_class() {
        let p = bt_params(); // theta = 0
        let mc = BtMultiClassParams {
            lambda: vec![p.lambda],
            mu: vec![p.mu],
            gamma: p.gamma,
            eta: p.eta,
            s0: p.s0,
            mu_seed: p.mu,
        };
        let single = p.steady_state();
        let multi = mc.steady_state();
        assert!((multi.leechers[0] - single.leechers).abs() < 1e-8);
        assert!((multi.seeds[0] - single.seeds).abs() < 1e-12);
        assert!((mc.mean_download_rounds()[0] - p.mean_download_rounds()).abs() < 1e-8);
    }

    #[test]
    fn multiclass_balance_and_monotonicity() {
        let mc = BtMultiClassParams {
            lambda: vec![2.0, 2.0, 2.0],
            mu: vec![1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0],
            gamma: 0.25,
            eta: 1.0,
            s0: 2.0,
            mu_seed: 1.0 / 16.0,
        };
        let state = mc.steady_state();
        // Scalar fixed point holds.
        let x: f64 = state.leechers.iter().sum();
        let s = mc.mu_seed * mc.s0
            + mc.mu
                .iter()
                .zip(&state.seeds)
                .map(|(&m, &y)| m * y)
                .sum::<f64>();
        let resid: f64 = mc
            .lambda
            .iter()
            .zip(&mc.mu)
            .map(|(&l, &m)| l / (mc.eta * m * x + s))
            .sum::<f64>()
            - 1.0;
        assert!(resid.abs() < 1e-10, "fixed-point residual {resid}");
        // Per-class balance: x_i (η μ_i + S/X) = λ_i.
        for i in 0..3 {
            let flux = state.leechers[i] * (mc.eta * mc.mu[i] + s / x);
            assert!((flux - mc.lambda[i]).abs() < 1e-8);
        }
        // Faster classes finish faster.
        let t = mc.mean_download_rounds();
        assert!(t[0] > t[1] && t[1] > t[2], "{t:?}");
    }

    #[test]
    fn multiclass_equal_mu_split_is_invariant() {
        // Splitting one class's arrivals into two equal-mu classes must
        // not move the total population or the per-class delay.
        let whole = BtMultiClassParams {
            lambda: vec![4.0],
            mu: vec![1.0 / 16.0],
            gamma: 0.25,
            eta: 1.0,
            s0: 2.0,
            mu_seed: 1.0 / 16.0,
        };
        let split = BtMultiClassParams {
            lambda: vec![1.0, 3.0],
            mu: vec![1.0 / 16.0, 1.0 / 16.0],
            ..whole.clone()
        };
        let a = whole.steady_state();
        let b = split.steady_state();
        let xa: f64 = a.leechers.iter().sum();
        let xb: f64 = b.leechers.iter().sum();
        assert!((xa - xb).abs() < 1e-8);
        let ta = whole.mean_download_rounds()[0];
        for tb in split.mean_download_rounds() {
            assert!((ta - tb).abs() < 1e-8);
        }
    }

    #[test]
    fn capacity_share_slows_every_class_but_spares_publishers() {
        let mc = BtMultiClassParams {
            lambda: vec![2.0, 2.0, 2.0],
            mu: vec![1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0],
            gamma: 0.25,
            eta: 1.0,
            s0: 2.0,
            mu_seed: 1.0 / 16.0,
        };
        let halved = mc.with_capacity_share(0.5);
        assert_eq!(halved.mu, vec![1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0]);
        // Publishers are single-torrent in the universe: unscaled.
        assert_eq!(halved.mu_seed, mc.mu_seed);
        assert_eq!(halved.lambda, mc.lambda);
        // Share 1 is the identity.
        assert_eq!(mc.with_capacity_share(1.0), mc);
        // Splitting capacity strictly lengthens every class's download.
        let full = mc.mean_download_rounds();
        let split = halved.mean_download_rounds();
        for (f, s) in full.iter().zip(&split) {
            assert!(s > f, "full {f}, split {s}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity share must lie in (0, 1]")]
    fn capacity_share_out_of_range_rejected() {
        let mc = BtMultiClassParams {
            lambda: vec![2.0],
            mu: vec![1.0 / 16.0],
            gamma: 0.25,
            eta: 1.0,
            s0: 2.0,
            mu_seed: 1.0 / 16.0,
        };
        let _ = mc.with_capacity_share(0.0);
    }

    #[test]
    #[should_panic(expected = "oversupplies arrivals")]
    fn multiclass_oversupplied_swarm_rejected() {
        let mc = BtMultiClassParams {
            lambda: vec![0.1],
            mu: vec![1.0 / 16.0],
            gamma: 0.25,
            eta: 1.0,
            s0: 100.0,
            mu_seed: 1.0,
        };
        let _ = mc.steady_state();
    }

    #[test]
    fn exact_prelimit_formula() {
        // Pre-limit: D(1, j) = p(1-p)^{j-2} in paper labels; the scaled
        // value at small β must be close to d.
        let n = 2000;
        let d = 20.0;
        let sol = crate::one_matching::solve(n, d / n as f64, &[0]);
        let scaled = n as f64 * sol.row(0).unwrap()[1];
        assert!((scaled - d).abs() < 0.5, "scaled {scaled}");
    }
}
