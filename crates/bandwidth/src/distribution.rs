//! Upstream-bandwidth distributions (§6, Figure 10).
//!
//! The paper instantiates its efficiency model on the upstream-bandwidth
//! distribution measured by Saroiu, Gummadi & Gribble on Gnutella (MMCN
//! 2002). That raw dataset is not redistributable, so this module ships a
//! **synthetic piecewise log-linear CDF** whose control points are read off
//! the paper's Figure 10, with the density concentrations ("peaks") at the
//! access technologies of the era — 56 k modem, 128 k ISDN/DSL upstream,
//! 256 k / 512 k DSL, ~1 M cable, 10 M LAN. Everything downstream of this
//! module (Figure 11's efficiency curve) depends only on these shape
//! features, which is why the substitution preserves the paper's findings
//! (see DESIGN.md).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error raised when constructing a [`BandwidthCdf`] from invalid points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BandwidthError {
    /// Fewer than two control points.
    TooFewPoints,
    /// Bandwidths must be positive and strictly increasing; fractions must
    /// be strictly increasing within `[0, 1]` ending at 1.
    InvalidPoints {
        /// Index of the offending control point.
        index: usize,
    },
}

impl core::fmt::Display for BandwidthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            BandwidthError::TooFewPoints => write!(f, "need at least two control points"),
            BandwidthError::InvalidPoints { index } => {
                write!(f, "invalid control point at index {index}")
            }
        }
    }
}

impl std::error::Error for BandwidthError {}

/// A cumulative distribution of upstream bandwidth (kbps), piecewise linear
/// in `log₁₀(bandwidth)`.
///
/// # Examples
///
/// ```
/// use strat_bandwidth::BandwidthCdf;
///
/// let cdf = BandwidthCdf::saroiu_gnutella_upstream();
/// // Roughly a fifth of hosts sit at or below the 56k modem class.
/// let f = cdf.cdf(64.0);
/// assert!(f > 0.15 && f < 0.3, "{f}");
/// // Quantiles invert the CDF.
/// let q = cdf.quantile(f);
/// assert!((q - 64.0).abs() / 64.0 < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthCdf {
    /// `(log10(kbps), cumulative fraction)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl BandwidthCdf {
    /// Builds a CDF from `(bandwidth kbps, cumulative fraction)` control
    /// points.
    ///
    /// The first fraction may be any value in `[0, 1)` (mass below the first
    /// point is collapsed onto it); the last must be exactly 1.
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthError`] if fewer than two points are given, or if
    /// bandwidths/fractions are not strictly increasing, or bandwidths are
    /// not positive, or the last fraction is not 1.
    pub fn from_points(points: &[(f64, f64)]) -> Result<Self, BandwidthError> {
        if points.len() < 2 {
            return Err(BandwidthError::TooFewPoints);
        }
        let mut log_points = Vec::with_capacity(points.len());
        for (idx, &(bw, frac)) in points.iter().enumerate() {
            if !(bw.is_finite() && bw > 0.0 && (0.0..=1.0).contains(&frac)) {
                return Err(BandwidthError::InvalidPoints { index: idx });
            }
            if let Some(&(prev_log, prev_frac)) = log_points.last() {
                if bw.log10() <= prev_log || frac <= prev_frac {
                    return Err(BandwidthError::InvalidPoints { index: idx });
                }
            }
            log_points.push((bw.log10(), frac));
        }
        if (log_points.last().expect("nonempty").1 - 1.0).abs() > 1e-12 {
            return Err(BandwidthError::InvalidPoints {
                index: points.len() - 1,
            });
        }
        Ok(Self { points: log_points })
    }

    /// The synthetic stand-in for the Saroiu et al. Gnutella *upstream*
    /// measurement used by the paper's Figure 10.
    ///
    /// Control points (kbps → cumulative %): steep risers encode the density
    /// peaks at 56 k modems, 128 k ISDN/DSL, 256 k & 512 k DSL upstreams,
    /// ~1 M cable, and 10 M LAN.
    #[must_use]
    pub fn saroiu_gnutella_upstream() -> Self {
        Self::from_points(&[
            (16.0, 0.0),  // slowest measured hosts
            (40.0, 0.04), // slow tail
            (48.0, 0.06),
            (64.0, 0.25), // 56k modem class: ~19% of hosts at 48-64 kbps
            (96.0, 0.32),
            (128.0, 0.41), // ISDN / low-DSL upstream class
            (192.0, 0.48),
            (256.0, 0.56), // DSL 256k upstream class
            (384.0, 0.63),
            (512.0, 0.71), // DSL 512k upstream class
            (800.0, 0.78),
            (1_200.0, 0.84), // cable ~1M class
            (2_500.0, 0.89),
            (5_000.0, 0.93),
            (12_000.0, 0.97), // 10M LAN class
            (40_000.0, 1.0),  // campus links
        ])
        .expect("preset control points are valid")
    }

    /// Cumulative fraction of hosts with bandwidth `<= bw` kbps.
    ///
    /// Clamps outside the supported range.
    #[must_use]
    pub fn cdf(&self, bw: f64) -> f64 {
        assert!(
            bw > 0.0 && bw.is_finite(),
            "bandwidth must be positive, got {bw}"
        );
        let x = bw.log10();
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return 1.0;
        }
        let hi = pts.partition_point(|&(px, _)| px < x);
        let (x0, f0) = pts[hi - 1];
        let (x1, f1) = pts[hi];
        f0 + (f1 - f0) * (x - x0) / (x1 - x0)
    }

    /// Bandwidth (kbps) at cumulative fraction `u ∈ [0, 1]` (inverse CDF).
    ///
    /// Fractions at or below the first control point's mass map to the
    /// lowest bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `u ∉ [0, 1]` or `u` is NaN.
    #[must_use]
    pub fn quantile(&self, u: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&u),
            "fraction must be in [0, 1], got {u}"
        );
        let pts = &self.points;
        if u <= pts[0].1 {
            return 10f64.powf(pts[0].0);
        }
        let hi = pts.partition_point(|&(_, pf)| pf < u).min(pts.len() - 1);
        let (x0, f0) = pts[hi - 1];
        let (x1, f1) = pts[hi];
        let x = x0 + (x1 - x0) * (u - f0) / (f1 - f0);
        10f64.powf(x)
    }

    /// Draws one host bandwidth.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen_range(0.0..1.0))
    }

    /// Bandwidths for `n` peers **indexed by global rank** (rank 0 = best):
    /// `bw[r] = quantile(1 − (r + ½)/n)`, the mid-quantile discretization of
    /// the distribution.
    ///
    /// This is how the efficiency model (§6 / Figure 11) couples the global
    /// ranking to the bandwidth distribution: upload capacity *is* the mark
    /// `S(p)`.
    #[must_use]
    pub fn assign_by_rank(&self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|r| self.quantile(1.0 - (r as f64 + 0.5) / n as f64))
            .collect()
    }

    /// Bandwidths for `n` peers in **shuffled order**: the mid-quantile
    /// rank assignment of [`assign_by_rank`](Self::assign_by_rank),
    /// permuted by a ChaCha8 stream seeded with `seed` so the peer index
    /// carries no rank information.
    ///
    /// This is the standard way experiments hand upload capacities to the
    /// swarm simulator (peer ids are protocol-level, not rank-level); the
    /// seed makes the permutation part of the declarative scenario rather
    /// than ambient RNG state.
    #[must_use]
    pub fn assign_shuffled(&self, n: usize, seed: u64) -> Vec<f64> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut values = self.assign_by_rank(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        values.shuffle(&mut rng);
        values
    }

    /// Supported bandwidth range `(min, max)` in kbps.
    #[must_use]
    pub fn support(&self) -> (f64, f64) {
        (
            10f64.powf(self.points[0].0),
            10f64.powf(self.points[self.points.len() - 1].0),
        )
    }

    /// The control points as `(kbps, fraction)` pairs (for plotting
    /// Figure 10).
    #[must_use]
    pub fn control_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|&(x, f)| (10f64.powf(x), f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn preset_is_monotone_and_normalized() {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        let (lo, hi) = cdf.support();
        assert!((lo - 16.0).abs() < 1e-9);
        assert!((hi - 40_000.0).abs() < 1e-6);
        let mut prev = -1.0;
        let mut bw = lo;
        while bw <= hi {
            let f = cdf.cdf(bw);
            assert!(f >= prev, "CDF not monotone at {bw}");
            prev = f;
            bw *= 1.07;
        }
        assert_eq!(cdf.cdf(hi), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        for u in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let bw = cdf.quantile(u);
            let back = cdf.cdf(bw);
            assert!((back - u).abs() < 1e-9, "u={u}: bw={bw}, back={back}");
        }
    }

    #[test]
    fn density_peak_at_modem_class() {
        // The CDF must rise much faster across the 56k riser than just
        // before it: that is the density peak Figure 11 keys on.
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        let peak_slope = (cdf.cdf(64.0) - cdf.cdf(48.0)) / (64f64.log10() - 48f64.log10());
        let before_slope = (cdf.cdf(48.0) - cdf.cdf(40.0)) / (48f64.log10() - 40f64.log10());
        assert!(
            peak_slope > 3.0 * before_slope,
            "{peak_slope} vs {before_slope}"
        );
    }

    #[test]
    fn assign_by_rank_is_decreasing() {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        let bw = cdf.assign_by_rank(500);
        assert_eq!(bw.len(), 500);
        for w in bw.windows(2) {
            assert!(w[0] >= w[1], "rank assignment must be non-increasing");
        }
        // Best peer near the top of the support, worst near the bottom.
        assert!(bw[0] > 30_000.0);
        assert!(bw[499] < 20.0);
    }

    #[test]
    fn assign_shuffled_is_a_seeded_permutation_of_by_rank() {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        let by_rank = cdf.assign_by_rank(200);
        let shuffled = cdf.assign_shuffled(200, 9);
        // Same multiset, different order, deterministic per seed.
        let mut a = by_rank.clone();
        let mut b = shuffled.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
        assert_ne!(by_rank, shuffled);
        assert_eq!(shuffled, cdf.assign_shuffled(200, 9));
        assert_ne!(shuffled, cdf.assign_shuffled(200, 10));
    }

    #[test]
    fn sampling_matches_cdf() {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let n = 50_000;
        let below_64k = (0..n).filter(|_| cdf.sample(&mut rng) <= 64.0).count() as f64 / n as f64;
        let expected = cdf.cdf(64.0);
        assert!(
            (below_64k - expected).abs() < 0.01,
            "{below_64k} vs {expected}"
        );
    }

    #[test]
    fn from_points_validation() {
        assert_eq!(
            BandwidthCdf::from_points(&[(10.0, 0.5)]).unwrap_err(),
            BandwidthError::TooFewPoints
        );
        // Non-increasing fraction.
        assert!(matches!(
            BandwidthCdf::from_points(&[(10.0, 0.5), (20.0, 0.4), (30.0, 1.0)]).unwrap_err(),
            BandwidthError::InvalidPoints { index: 1 }
        ));
        // Non-increasing bandwidth.
        assert!(matches!(
            BandwidthCdf::from_points(&[(10.0, 0.1), (10.0, 0.5), (30.0, 1.0)]).unwrap_err(),
            BandwidthError::InvalidPoints { index: 1 }
        ));
        // Last fraction must be 1.
        assert!(matches!(
            BandwidthCdf::from_points(&[(10.0, 0.1), (20.0, 0.9)]).unwrap_err(),
            BandwidthError::InvalidPoints { index: 1 }
        ));
        // Valid two-point CDF.
        let cdf = BandwidthCdf::from_points(&[(10.0, 0.0), (1000.0, 1.0)]).unwrap();
        assert!((cdf.quantile(0.5) - 100.0).abs() < 1e-9); // log-uniform midpoint
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn bad_quantile_panics() {
        let _ = BandwidthCdf::saroiu_gnutella_upstream().quantile(1.5);
    }

    #[test]
    fn control_points_round_trip() {
        let pts = vec![(10.0, 0.0), (100.0, 0.5), (1000.0, 1.0)];
        let cdf = BandwidthCdf::from_points(&pts).unwrap();
        let back = cdf.control_points();
        for (a, b) in pts.iter().zip(&back) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-12);
        }
    }
}
