//! Expected download/upload efficiency (§6, Figure 11).
//!
//! The paper couples the stable-matching model to a bandwidth distribution:
//!
//! * peers are ranked by **upload bandwidth per slot** — with `b₀` TFT slots
//!   plus one generous (optimistic) slot, peer `i` offers
//!   `slot(i) = U(i) / (b₀ + 1)` per collaboration;
//! * the acceptance graph is `G(n, d)` with `d` expected acceptable peers;
//! * peer `i`'s expected download rate is `Σ_c Σ_j D_c(i,j) · slot(j)`
//!   (Algorithm 3 drives who collaborates with whom).
//!
//! Two efficiency ratios are exposed:
//!
//! * [`EfficiencyPoint::ratio`] — download per unit of *used* upload
//!   (`E[D] / (E[#mates] · slot(i))`), the share-ratio-per-active-slot the
//!   Figure 11 observations are phrased in (ratio ≈ 1 at density peaks,
//!   < 1 for the best peers, > 1 for the lowest peers);
//! * [`EfficiencyPoint::ratio_offered`] — download per unit of *offered*
//!   TFT upload (`E[D] / (b₀ · slot(i))`), which additionally discounts the
//!   unmatched risk of the worst peers (Figure 8c).

use serde::{Deserialize, Serialize};
use strat_analytic::b_matching;

use crate::BandwidthCdf;

/// Parameters of the Figure 11 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyModel {
    /// Number of TFT collaboration slots per peer (paper: 3, i.e. 4 minus
    /// the generous slot).
    pub b0: u32,
    /// Expected number of acceptable peers (paper: 20).
    pub d: f64,
    /// Discretization: number of peers drawn from the bandwidth CDF. The
    /// model is n-free (§5), so this only controls resolution.
    pub n: usize,
}

impl Default for EfficiencyModel {
    /// The paper's Figure 11 parameters (`b₀ = 3`, `d = 20`) at a
    /// resolution of 2000 peers.
    fn default() -> Self {
        Self {
            b0: 3,
            d: 20.0,
            n: 2000,
        }
    }
}

/// One peer of the efficiency curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Global rank (0 = best).
    pub rank: usize,
    /// Total upload bandwidth `U(i)` in kbps.
    pub upload: f64,
    /// Upload bandwidth per slot `U(i) / (b₀ + 1)` — Figure 11's x-axis.
    pub slot_bandwidth: f64,
    /// Expected download rate `Σ_c Σ_j D_c(i,j)·slot(j)` in kbps.
    pub expected_download: f64,
    /// Expected number of matched TFT slots `Σ_c P(choice c exists)`.
    pub expected_mates: f64,
    /// Download per unit of used upload: `expected_download /
    /// (expected_mates · slot_bandwidth)`; 0 when never matched.
    pub ratio: f64,
    /// Download per unit of offered TFT upload: `expected_download /
    /// (b₀ · slot_bandwidth)`.
    pub ratio_offered: f64,
}

/// The full efficiency curve: one [`EfficiencyPoint`] per discretized peer,
/// best rank first.
///
/// # Examples
///
/// Reproduce Figure 11's qualitative claims:
///
/// ```
/// use strat_bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};
///
/// let cdf = BandwidthCdf::saroiu_gnutella_upstream();
/// let model = EfficiencyModel { b0: 3, d: 20.0, n: 600 };
/// let curve = efficiency_curve(&model, &cdf);
///
/// // Best peers are penalized: they can only collaborate downwards.
/// assert!(curve[0].ratio < 1.0);
/// // The lowest peers enjoy high efficiency when matched.
/// let worst = &curve[curve.len() - 1];
/// assert!(worst.ratio > 1.0);
/// ```
#[must_use]
pub fn efficiency_curve(model: &EfficiencyModel, cdf: &BandwidthCdf) -> Vec<EfficiencyPoint> {
    assert!(model.n >= 2, "need at least two peers");
    assert!(model.b0 >= 1, "b0 must be at least 1");
    assert!(model.d > 0.0 && model.d.is_finite(), "d must be positive");
    let n = model.n;
    let uploads = cdf.assign_by_rank(n);
    let slots: Vec<f64> = uploads
        .iter()
        .map(|u| u / f64::from(model.b0 + 1))
        .collect();
    let p = (model.d / (n as f64 - 1.0)).clamp(0.0, 1.0);
    let exp = b_matching::solve_expectations(n, p, model.b0, &slots);
    (0..n)
        .map(|i| {
            let expected_mates = exp.expected_degree[i];
            let expected_download = exp.weighted[i];
            let used = expected_mates * slots[i];
            let offered = f64::from(model.b0) * slots[i];
            EfficiencyPoint {
                rank: i,
                upload: uploads[i],
                slot_bandwidth: slots[i],
                expected_download,
                expected_mates,
                ratio: if used > 0.0 {
                    expected_download / used
                } else {
                    0.0
                },
                ratio_offered: if offered > 0.0 {
                    expected_download / offered
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Mean [`EfficiencyPoint::ratio`] over the peers whose slot bandwidth lies
/// within `[lo, hi)` kbps — a shape probe for the Figure 11 criteria.
#[must_use]
pub fn mean_ratio_in_band(curve: &[EfficiencyPoint], lo: f64, hi: f64) -> Option<f64> {
    let band: Vec<f64> = curve
        .iter()
        .filter(|pt| pt.slot_bandwidth >= lo && pt.slot_bandwidth < hi)
        .map(|pt| pt.ratio)
        .collect();
    if band.is_empty() {
        return None;
    }
    Some(band.iter().sum::<f64>() / band.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<EfficiencyPoint> {
        let cdf = BandwidthCdf::saroiu_gnutella_upstream();
        efficiency_curve(
            &EfficiencyModel {
                b0: 3,
                d: 20.0,
                n: 800,
            },
            &cdf,
        )
    }

    #[test]
    fn best_peers_have_low_ratio() {
        let curve = curve();
        // §6 bullet 1: the best peers can only collaborate with lower peers,
        // so their exchange is suboptimal.
        let top_mean: f64 = curve[..8].iter().map(|p| p.ratio).sum::<f64>() / 8.0;
        assert!(top_mean < 1.0, "top-peer mean ratio {top_mean}");
    }

    #[test]
    fn density_peak_peers_have_ratio_near_one() {
        let curve = curve();
        // §6 bullet 2: the 56k modem class (upload 52-56 kbps, slot
        // 13-14 kbps) mostly collaborates with its own kind, so its ratio
        // sits near 1 — the residual excess comes from the exponential tail
        // of the mate-offset distribution reaching into better classes
        // (exactly the paper's Figure 11, where density-peak dips sit at
        // ~0.9-1.2 between efficiency spikes).
        let peak = mean_ratio_in_band(&curve, 13.0, 14.0).expect("modem band populated");
        assert!((peak - 1.0).abs() < 0.25, "modem-class ratio {peak}");
    }

    #[test]
    fn worst_peers_have_high_ratio() {
        let curve = curve();
        // §6 bullet 4: the lowest peers obtain several times their own slot
        // bandwidth when matched.
        let worst = &curve[curve.len() - 1];
        assert!(worst.ratio > 1.3, "worst-peer ratio {}", worst.ratio);
        // ... at the cost of a real unmatched risk.
        assert!(worst.expected_mates < 3.0);
    }

    #[test]
    fn efficiency_peak_just_above_density_peak() {
        let curve = curve();
        // §6 bullet 3: peers just above the modem peak (slot 14.5-20 kbps,
        // upload 58-80) beat peers inside the peak (12.6-14 kbps): their
        // lower mates offer almost the same bandwidth while their upper
        // mates offer more.
        let above = mean_ratio_in_band(&curve, 14.5, 20.0).expect("band populated");
        let inside = mean_ratio_in_band(&curve, 12.6, 14.0).expect("band populated");
        assert!(above > inside, "above-peak {above} !> in-peak {inside}");
    }

    #[test]
    fn offered_ratio_discounts_unmatched_risk() {
        let curve = curve();
        for pt in &curve {
            // ratio_offered = ratio · expected_mates / b0 <= ratio when the
            // peer is not always fully matched.
            assert!(pt.ratio_offered <= pt.ratio + 1e-9);
        }
        // For a mid-rank (always matched) peer the two coincide.
        let mid = &curve[400];
        assert!(
            (mid.expected_mates - 3.0).abs() < 0.05,
            "{}",
            mid.expected_mates
        );
        assert!((mid.ratio - mid.ratio_offered).abs() < 0.05);
    }

    #[test]
    fn slot_bandwidth_is_quarter_of_upload() {
        let curve = curve();
        for pt in curve.iter().step_by(97) {
            assert!((pt.slot_bandwidth - pt.upload / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn curve_is_rank_ordered_and_finite() {
        let curve = curve();
        assert_eq!(curve.len(), 800);
        for (i, pt) in curve.iter().enumerate() {
            assert_eq!(pt.rank, i);
            assert!(pt.ratio.is_finite() && pt.ratio >= 0.0);
        }
        for w in curve.windows(2) {
            assert!(w[0].upload >= w[1].upload);
        }
    }

    #[test]
    fn band_probe_handles_empty_band() {
        let curve = curve();
        assert!(mean_ratio_in_band(&curve, 1e9, 2e9).is_none());
    }
}
