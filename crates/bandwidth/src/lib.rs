//! Bandwidth distributions and the download/upload efficiency model of
//! *Stratification in P2P Networks*, Section 6 (Figures 10 and 11).
//!
//! [`BandwidthCdf`] models host upstream-bandwidth distributions as
//! piecewise log-linear CDFs; [`BandwidthCdf::saroiu_gnutella_upstream`] is
//! the synthetic stand-in for the Saroiu et al. Gnutella measurement the
//! paper uses (see DESIGN.md for the substitution rationale).
//! [`efficiency_curve`] combines a CDF with the analytic `b₀`-matching mate
//! distribution (`strat-analytic`) to produce the expected
//! download/upload-ratio curve — the paper's practical BitTorrent insight.
//!
//! # Example
//!
//! ```
//! use strat_bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};
//!
//! let cdf = BandwidthCdf::saroiu_gnutella_upstream();
//! let curve = efficiency_curve(&EfficiencyModel { b0: 3, d: 20.0, n: 400 }, &cdf);
//! // Tit-for-Tat under stratification penalizes the fastest uploaders:
//! assert!(curve.first().unwrap().ratio < curve[200].ratio);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod distribution;
mod efficiency;

pub use distribution::{BandwidthCdf, BandwidthError};
pub use efficiency::{efficiency_curve, mean_ratio_in_band, EfficiencyModel, EfficiencyPoint};
