//! Property-based tests for bandwidth CDFs and the efficiency model.

use proptest::prelude::*;
use strat_bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};

/// Strategy: a valid set of CDF control points — strictly increasing
/// bandwidths and fractions ending at 1.
fn control_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((1.0f64..1e6, 1e-6f64..1.0), 2..12).prop_map(|raw| {
        let mut bws: Vec<f64> = raw.iter().map(|r| r.0).collect();
        bws.sort_by(f64::total_cmp);
        bws.dedup_by(|a, b| *a <= *b * 1.0001);
        let k = bws.len().max(2);
        while bws.len() < k {
            bws.push(bws.last().unwrap() * 2.0);
        }
        // Normalized cumulative fractions, strictly increasing to 1.
        let mut fracs: Vec<f64> = raw.iter().take(bws.len()).map(|r| r.1).collect();
        while fracs.len() < bws.len() {
            fracs.push(0.5);
        }
        let total: f64 = fracs.iter().sum();
        let mut cum = 0.0;
        let mut points = Vec::with_capacity(bws.len());
        for (i, bw) in bws.iter().enumerate() {
            cum += fracs[i] / total;
            let frac = if i + 1 == bws.len() {
                1.0
            } else {
                cum.min(1.0 - 1e-9)
            };
            points.push((*bw, frac));
        }
        points
    })
}

proptest! {
    /// Any valid control-point set yields a monotone CDF with a correct
    /// quantile inverse.
    #[test]
    fn cdf_quantile_inverse(points in control_points()) {
        let Ok(cdf) = BandwidthCdf::from_points(&points) else {
            // Degenerate deduplication can collapse adjacent points; the
            // constructor rejecting them is the correct behaviour.
            return Ok(());
        };
        let (lo, hi) = cdf.support();
        prop_assert!(lo > 0.0 && hi >= lo);
        // Monotone CDF.
        let mut prev = -1.0;
        let mut bw = lo;
        while bw <= hi * 1.0001 {
            let f = cdf.cdf(bw.min(hi));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
            bw *= 1.25;
        }
        // Quantile inverts wherever the CDF is above the first point's mass.
        let base = points[0].1;
        for u in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            if u <= base {
                continue;
            }
            let q = cdf.quantile(u);
            prop_assert!((cdf.cdf(q) - u).abs() < 1e-6, "u={}: q={}, back={}", u, q, cdf.cdf(q));
        }
    }

    /// Ranked assignment is non-increasing and inside the support for any
    /// valid CDF and size.
    #[test]
    fn ranked_assignment_monotone(points in control_points(), n in 1usize..300) {
        let Ok(cdf) = BandwidthCdf::from_points(&points) else { return Ok(()); };
        let bw = cdf.assign_by_rank(n);
        prop_assert_eq!(bw.len(), n);
        let (lo, hi) = cdf.support();
        for w in bw.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for &x in &bw {
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
        }
    }

    /// The efficiency curve is finite, positive, and rank-ordered for any
    /// valid CDF and small model.
    #[test]
    fn efficiency_curve_is_well_formed(
        points in control_points(),
        b0 in 1u32..4,
        d in 4.0f64..30.0,
    ) {
        let Ok(cdf) = BandwidthCdf::from_points(&points) else { return Ok(()); };
        let model = EfficiencyModel { b0, d, n: 120 };
        let curve = efficiency_curve(&model, &cdf);
        prop_assert_eq!(curve.len(), 120);
        for (i, pt) in curve.iter().enumerate() {
            prop_assert_eq!(pt.rank, i);
            prop_assert!(pt.ratio.is_finite() && pt.ratio >= 0.0);
            prop_assert!(pt.ratio_offered <= pt.ratio + 1e-9);
            prop_assert!(pt.expected_mates <= f64::from(b0) + 1e-9);
            prop_assert!(
                (pt.slot_bandwidth - pt.upload / f64::from(b0 + 1)).abs() < 1e-9
            );
        }
    }
}
