//! # stratification
//!
//! A from-scratch Rust reproduction of **“Stratification in P2P Networks —
//! Application to BitTorrent”** (Anh-Tuan Gai, Fabien Mathieu, Julien
//! Reynier, Fabien de Montgolfier; INRIA RR-6081, ICDCS 2007).
//!
//! The paper models collaborative peer-to-peer networks as **stable
//! b-matching under a global ranking**: every peer agrees on a single
//! quality order (upload bandwidth in BitTorrent), owns `b(p)` collaboration
//! slots, and keeps trading partners for better ones. A unique stable
//! configuration exists; initiative dynamics converge to it; and in it,
//! peers collaborate only with peers of nearby rank — **stratification** —
//! which explains BitTorrent's Tit-for-Tat clustering, the share-ratio
//! structure across bandwidth classes, and the default of 4 unchoke slots.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `strat-graph` | acceptance graphs, Erdős–Rényi generators, components |
//! | [`core`] | `strat-core` | ranking, b-matching, Algorithm 1, initiative dynamics, churn, cluster/MMO |
//! | [`analytic`] | `strat-analytic` | Algorithms 2–3, exact enumeration, fluid limit, Monte Carlo |
//! | [`bandwidth`] | `strat-bandwidth` | Saroiu-style bandwidth CDF, D/U efficiency model |
//! | [`bittorrent`] | `strat-bittorrent` | TFT swarm simulator (rarest-first, optimistic unchoke, behavior mixes) |
//! | [`scenario`] | `strat-scenario` | declarative, JSON-serializable `Scenario` values driving both backends |
//! | [`sim`] | `strat-sim` | the experiment harness regenerating every paper table/figure |
//!
//! # Quick start
//!
//! ```
//! use stratification::core::{
//!     blocking, stable_configuration, Capacities, GlobalRanking, RankedAcceptance,
//! };
//! use stratification::graph::generators;
//! use rand::SeedableRng;
//!
//! // 500 peers, each accepting ~20 random others, 3 collaboration slots.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let graph = generators::erdos_renyi_mean_degree(500, 20.0, &mut rng);
//! let acc = RankedAcceptance::new(graph, GlobalRanking::identity(500))?;
//! let caps = Capacities::constant(500, 3);
//!
//! // The unique stable configuration (paper Algorithm 1).
//! let stable = stable_configuration(&acc, &caps)?;
//! assert!(blocking::is_stable(&acc, &caps, &stable));
//!
//! // Stratification: mates stay close in rank.
//! let stats = stratification::core::cluster::cluster_stats(acc.ranking(), &stable);
//! assert!(stats.mmo < 100.0); // mean max offset ≪ n
//! # Ok::<(), stratification::core::ModelError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and DESIGN.md / EXPERIMENTS.md
//! for the experiment index.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use strat_analytic as analytic;
pub use strat_bandwidth as bandwidth;
pub use strat_bittorrent as bittorrent;
pub use strat_core as core;
pub use strat_graph as graph;
pub use strat_scenario as scenario;
pub use strat_sim as sim;
